// Package storage implements the in-memory MPP storage substrate: every
// table's rows live in per-(segment × leaf-partition) heaps. Inserts route
// tuples to a leaf with the partitioning function fT and to a segment with
// the distribution policy; replicated tables hold a full copy per segment.
//
// The layout mirrors what the paper relies on: "given a logical partition
// OID the storage layer can locate and retrieve the tuples belonging to
// that partition" (§2.1), independently on every segment.
//
// # Columnar heaps
//
// Each (segment × leaf × replica) heap is a vec.ColumnSet: one typed
// vector per table column plus a null bitmap, instead of a []types.Row of
// boxed datums. The row-oriented API survives unchanged on top — ScanLeaf
// returns the set's cached row view (an arena materialized once per heap
// version and replaced, never mutated, on write, so handed-out rows stay
// stable forever), and DML addresses rows by the same RowID positions,
// applied lane-wise (SetRow, swap-delete). The executor's vectorized
// kernels read the column vectors directly via ScanLeafColsAt.
//
// # Mirrored replicas
//
// With EnableMirrors every logical segment holds two physical replicas of
// its data (GPDB's primary/mirror pair). DML applies to both replicas
// inside the same per-table critical section, in the same order, so the
// column sets — including swap-delete reordering and therefore RowID
// indexes — stay byte-identical across replicas and a failover is
// invisible to readers. A replica can be killed (KillReplica) and later
// revived (ReviveReplica, which resyncs by cloning the surviving replica's
// column sets when writes happened in between); reads from a dead replica
// fail with *DeadSegmentError, and the fault tolerance service
// (internal/fts) promotes the mirror via Promote.
package storage

import (
	"context"
	"fmt"
	"sync"

	"partopt/internal/catalog"
	"partopt/internal/fault"
	"partopt/internal/part"
	"partopt/internal/types"
	"partopt/internal/vec"
)

// RowID identifies a stored row physically: segment, leaf partition, index
// within the heap. It is the analogue of PostgreSQL's ctid and is used by
// DML to address rows produced by a scan.
type RowID struct {
	Seg  int
	Leaf part.OID
	Idx  int
}

// NumReplicas is the physical replica count per logical segment once
// mirroring is enabled: a primary and one synchronously-applied mirror.
const NumReplicas = 2

// DeadSegmentError reports a read or write addressed to a replica that has
// been killed. It carries no Transient method on purpose: whether a retry
// can succeed is a failover decision, made by the executor's FTS evidence
// path (exec.SegmentFailureError), not by the storage layer.
type DeadSegmentError struct {
	Seg     int
	Replica int
}

func (e *DeadSegmentError) Error() string {
	return fmt.Sprintf("storage: segment %d replica %d is down", e.Seg, e.Replica)
}

// heapMap is one replica's heap array: per segment, the leaf column sets.
type heapMap []map[part.OID]*vec.ColumnSet

// tableData holds one table's rows and secondary indexes.
type tableData struct {
	tab   *catalog.Table
	kinds []types.Kind // declared lane kinds, one per column
	mu    sync.RWMutex
	// heaps[segment][leafOID] — for unpartitioned tables the single heap
	// is keyed by the table's root OID. heaps is replica 0; mirror, non-nil
	// once mirroring is enabled, is replica 1 with identical layout.
	heaps   heapMap
	mirror  heapMap
	indexes []*tableIndex
}

// heapsOf returns one replica's heap array (nil for an unallocated mirror).
func (td *tableData) heapsOf(replica int) heapMap {
	if replica == 0 {
		return td.heaps
	}
	return td.mirror
}

// leafSet returns the column set of one (segment, leaf), creating it on
// first write. Callers hold td.mu exclusively.
func (td *tableData) leafSet(h heapMap, seg int, leaf part.OID) *vec.ColumnSet {
	cs := h[seg][leaf]
	if cs == nil {
		cs = vec.NewColumnSet(td.kinds)
		h[seg][leaf] = cs
	}
	return cs
}

// Store is the storage layer of one simulated cluster.
type Store struct {
	segments int
	mu       sync.RWMutex
	tables   map[part.OID]*tableData
	faults   *fault.Injector

	// Replica bookkeeping, guarded by mu. primary[seg] is the replica
	// serving reads (flipped by Promote on failover); alive and stale track
	// per-replica liveness and whether a dead replica missed writes.
	mirrored bool
	primary  []int
	alive    [][NumReplicas]bool
	stale    [][NumReplicas]bool
}

// SetFaults arms (or, with nil, disarms) storage-layer fault injection —
// the fault.StorageScan point in ScanLeaf. Arm it before running queries;
// it is not synchronized against in-flight scans.
func (s *Store) SetFaults(in *fault.Injector) { s.faults = in }

// NewStore creates storage for a cluster with the given segment count.
func NewStore(segments int) *Store {
	if segments < 1 {
		panic("storage: need at least one segment")
	}
	s := &Store{
		segments: segments,
		tables:   map[part.OID]*tableData{},
		primary:  make([]int, segments),
		alive:    make([][NumReplicas]bool, segments),
		stale:    make([][NumReplicas]bool, segments),
	}
	for seg := range s.alive {
		s.alive[seg][0] = true
	}
	return s
}

// Segments returns the cluster's segment count.
func (s *Store) Segments() int { return s.segments }

// EnableMirrors gives every logical segment a second replica, cloning any
// existing data into it. Idempotent; safe only while no queries run.
func (s *Store) EnableMirrors() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mirrored {
		return
	}
	s.mirrored = true
	for seg := range s.alive {
		s.alive[seg][1] = true
	}
	for _, td := range s.tables {
		td.mu.Lock()
		td.mirror = cloneHeaps(td.heaps)
		td.mu.Unlock()
	}
}

// cloneHeaps deep-copies a heap array: maps and column sets copied (string
// payload bytes stay shared — strings are immutable).
func cloneHeaps(src heapMap) heapMap {
	out := make(heapMap, len(src))
	for seg, m := range src {
		cp := make(map[part.OID]*vec.ColumnSet, len(m))
		for leaf, cs := range m {
			cp[leaf] = cs.Clone()
		}
		out[seg] = cp
	}
	return out
}

// Mirrored reports whether segments carry mirror replicas.
func (s *Store) Mirrored() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mirrored
}

// Primary returns the replica currently serving segment seg.
func (s *Store) Primary(seg int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.primary[seg]
}

// PrimaryMap snapshots the per-segment primary replica assignment. The
// executor takes one snapshot per query attempt, so a failover mid-attempt
// surfaces as an error plus a retry against the new map rather than a
// torn read.
func (s *Store) PrimaryMap() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]int(nil), s.primary...)
}

// ReplicaAlive reports one replica's liveness.
func (s *Store) ReplicaAlive(seg, replica int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return seg >= 0 && seg < s.segments && replica >= 0 && replica < NumReplicas && s.alive[seg][replica]
}

// KillReplica simulates the death of one physical replica: subsequent
// reads and writes addressed to it fail with *DeadSegmentError until
// ReviveReplica. Killing the acting primary makes the segment unserveable
// until the FTS promotes the mirror.
func (s *Store) KillReplica(seg, replica int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkReplicaLocked(seg, replica); err != nil {
		return err
	}
	s.alive[seg][replica] = false
	return nil
}

// ReviveReplica brings a dead replica back. If writes were applied while
// it was down (the replica is stale), its column sets are resynchronized
// by cloning from the surviving replica before it is marked alive — GPDB's
// full recovery, compressed into a clone.
func (s *Store) ReviveReplica(seg, replica int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkReplicaLocked(seg, replica); err != nil {
		return err
	}
	if s.alive[seg][replica] {
		return nil
	}
	if s.stale[seg][replica] {
		src := 1 - replica
		for _, td := range s.tables {
			td.mu.Lock()
			from, to := td.heapsOf(src), td.heapsOf(replica)
			if from != nil && to != nil {
				cp := make(map[part.OID]*vec.ColumnSet, len(from[seg]))
				for leaf, cs := range from[seg] {
					cp[leaf] = cs.Clone()
				}
				to[seg] = cp
			}
			td.mu.Unlock()
		}
		s.stale[seg][replica] = false
	}
	s.alive[seg][replica] = true
	return nil
}

// Promote flips the segment's primary to the other replica — the failover
// step the FTS executes once it declares the acting primary down. It fails
// when the would-be primary is itself dead (double fault: the segment is
// lost until a replica is revived).
func (s *Store) Promote(seg int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkReplicaLocked(seg, 0); err != nil {
		return err
	}
	next := 1 - s.primary[seg]
	if !s.alive[seg][next] {
		return fmt.Errorf("storage: cannot promote segment %d: replica %d is down too", seg, next)
	}
	s.primary[seg] = next
	return nil
}

// ProbeReplica is the FTS health probe: it fires the fault.SegProbe point
// when probing the segment's acting primary (so probe timeouts can be
// injected without killing data), then reports the replica's liveness.
func (s *Store) ProbeReplica(ctx context.Context, seg, replica int) error {
	s.mu.RLock()
	isPrimary := seg >= 0 && seg < s.segments && s.primary[seg] == replica
	s.mu.RUnlock()
	if isPrimary {
		if err := s.faults.Hit(ctx, fault.SegProbe, seg); err != nil {
			return err
		}
	}
	if !s.ReplicaAlive(seg, replica) {
		return &DeadSegmentError{Seg: seg, Replica: replica}
	}
	return nil
}

func (s *Store) checkReplicaLocked(seg, replica int) error {
	if !s.mirrored {
		return fmt.Errorf("storage: mirroring is not enabled")
	}
	if seg < 0 || seg >= s.segments {
		return fmt.Errorf("storage: segment %d out of range", seg)
	}
	if replica < 0 || replica >= NumReplicas {
		return fmt.Errorf("storage: replica %d out of range", replica)
	}
	return nil
}

// writeView decides which replicas one segment's write applies to: every
// live replica. The write fails if the acting primary is dead (DML needs a
// live primary — the same rule GPDB enforces); a dead mirror is marked
// stale so ReviveReplica knows to resync it.
func (s *Store) writeView(seg int) ([NumReplicas]bool, error) {
	var apply [NumReplicas]bool
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.mirrored {
		apply[0] = true
		return apply, nil
	}
	p := s.primary[seg]
	if !s.alive[seg][p] {
		return apply, &DeadSegmentError{Seg: seg, Replica: p}
	}
	apply[p] = true
	other := 1 - p
	if s.alive[seg][other] {
		apply[other] = true
	} else {
		s.stale[seg][other] = true
	}
	return apply, nil
}

// CreateTable allocates heaps for a catalog table.
func (s *Store) CreateTable(t *catalog.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[t.OID]; exists {
		panic(fmt.Sprintf("storage: table %q already created", t.Name))
	}
	kinds := make([]types.Kind, len(t.Cols))
	for i, c := range t.Cols {
		kinds[i] = c.Kind
	}
	td := &tableData{tab: t, kinds: kinds, heaps: make(heapMap, s.segments)}
	for i := range td.heaps {
		td.heaps[i] = map[part.OID]*vec.ColumnSet{}
	}
	if s.mirrored {
		td.mirror = make(heapMap, s.segments)
		for i := range td.mirror {
			td.mirror[i] = map[part.OID]*vec.ColumnSet{}
		}
	}
	s.tables[t.OID] = td
}

func (s *Store) data(root part.OID) (*tableData, error) {
	s.mu.RLock()
	td, ok := s.tables[root]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: no table with OID %d", root)
	}
	return td, nil
}

// partKeys extracts the per-level partitioning key datums from a row.
func partKeys(t *catalog.Table, row types.Row) []types.Datum {
	ords := t.Part.KeyOrds()
	keys := make([]types.Datum, len(ords))
	for i, o := range ords {
		keys[i] = row[o]
	}
	return keys
}

// targetSegment computes the home segment of a row under hash distribution.
func (s *Store) targetSegment(t *catalog.Table, row types.Row) int {
	h := types.HashRow(row, t.Dist.KeyOrds)
	return int(h % uint64(s.segments))
}

// routeLeaf computes the leaf a row belongs to (fT), validating arity.
func routeLeaf(t *catalog.Table, row types.Row) (part.OID, error) {
	if len(row) != len(t.Cols) {
		return part.InvalidOID, fmt.Errorf("storage: table %q: row has %d columns, want %d", t.Name, len(row), len(t.Cols))
	}
	if !t.IsPartitioned() {
		return t.OID, nil
	}
	leaf := t.Part.Route(partKeys(t, row))
	if leaf == part.InvalidOID {
		return part.InvalidOID, fmt.Errorf("storage: table %q: row %s maps to no partition", t.Name, row)
	}
	return leaf, nil
}

// Insert routes one row to its leaf partition and segment(s). It returns
// an error for rows that map to no partition (fT = ⊥) or have the wrong
// arity.
func (s *Store) Insert(t *catalog.Table, row types.Row) error {
	td, err := s.data(t.OID)
	if err != nil {
		return err
	}
	leaf, err := routeLeaf(t, row)
	if err != nil {
		return err
	}
	if t.Dist.Kind == catalog.DistReplicated {
		views := make([][NumReplicas]bool, s.segments)
		for seg := range views {
			v, err := s.writeView(seg)
			if err != nil {
				return err
			}
			views[seg] = v
		}
		td.mu.Lock()
		defer td.mu.Unlock()
		td.invalidateIndexesLocked()
		for seg := range td.heaps {
			for rep, on := range views[seg] {
				if on {
					td.leafSet(td.heapsOf(rep), seg, leaf).AppendRow(row)
				}
			}
		}
		return nil
	}
	seg := s.targetSegment(t, row)
	view, err := s.writeView(seg)
	if err != nil {
		return err
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	td.invalidateIndexesLocked()
	for rep, on := range view {
		if on {
			td.leafSet(td.heapsOf(rep), seg, leaf).AppendRow(row)
		}
	}
	return nil
}

// InsertBatch inserts many rows in one critical section: every row is
// validated and routed up front, then the batch is grouped per
// (segment, leaf) destination and appended column-wise with one bulk
// append per leaf set and replica. Routing or arity errors reject the
// whole batch before anything is applied. Dual-apply semantics match
// Insert: write views are resolved per touched segment, so a dead mirror
// is marked stale and both live replicas receive identical appends in
// identical order.
func (s *Store) InsertBatch(t *catalog.Table, rows []types.Row) error {
	if len(rows) == 0 {
		return nil
	}
	td, err := s.data(t.OID)
	if err != nil {
		return err
	}
	type dest struct {
		seg  int
		leaf part.OID
	}
	groups := map[dest][]types.Row{}
	var order []dest // deterministic application order
	add := func(seg int, leaf part.OID, row types.Row) {
		d := dest{seg: seg, leaf: leaf}
		g, ok := groups[d]
		if !ok {
			order = append(order, d)
		}
		groups[d] = append(g, row)
	}
	replicated := t.Dist.Kind == catalog.DistReplicated
	for _, row := range rows {
		leaf, err := routeLeaf(t, row)
		if err != nil {
			return err
		}
		if replicated {
			for seg := 0; seg < s.segments; seg++ {
				add(seg, leaf, row)
			}
		} else {
			add(s.targetSegment(t, row), leaf, row)
		}
	}
	// Resolve write views for every touched segment before taking td.mu
	// (lock order: Store.mu inside writeView precedes tableData.mu).
	views := make(map[int][NumReplicas]bool)
	for _, d := range order {
		if _, ok := views[d.seg]; ok {
			continue
		}
		v, err := s.writeView(d.seg)
		if err != nil {
			return err
		}
		views[d.seg] = v
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	td.invalidateIndexesLocked()
	for _, d := range order {
		batch := groups[d]
		for rep, on := range views[d.seg] {
			if on {
				td.leafSet(td.heapsOf(rep), d.seg, d.leaf).AppendRows(batch)
			}
		}
	}
	return nil
}

// ScanLeaf returns the rows of one (segment, leaf) from the segment's
// acting primary replica. The returned rows come from the column set's
// cached row view: they stay valid indefinitely (writes replace the view,
// they never mutate it), but callers must not modify them.
func (s *Store) ScanLeaf(root part.OID, seg int, leaf part.OID) ([]types.Row, error) {
	rep := 0
	if seg >= 0 && seg < s.segments {
		rep = s.Primary(seg)
	}
	return s.ScanLeafAt(root, seg, rep, leaf)
}

// ScanLeafAt is the replica-addressed read: the executor dispatches to the
// replica its per-attempt segment map names. Reading a dead replica fails
// with *DeadSegmentError, which the executor reports to the FTS as
// failure evidence.
func (s *Store) ScanLeafAt(root part.OID, seg, replica int, leaf part.OID) ([]types.Row, error) {
	_, rows, err := s.scanLeafSet(root, seg, replica, leaf, false)
	return rows, err
}

// ScanLeafColsAt is ScanLeafAt's columnar twin: it returns lane view
// snapshots of the leaf's columns (nil for an empty leaf) alongside the
// cached row view, so the executor can emit zero-copy column windows while
// keeping the batch's row view populated for row-oriented operators. Both
// are captured under the table's read lock and stay valid afterward: a
// later writer copies the lanes rather than touching a handed-out
// snapshot. Read-only for callers.
func (s *Store) ScanLeafColsAt(root part.OID, seg, replica int, leaf part.OID) ([]vec.View, []types.Row, error) {
	return s.scanLeafSet(root, seg, replica, leaf, true)
}

// scanLeafSet validates the read address and captures the leaf's row view
// (nil when the leaf holds no rows) — plus, when withCols is set, its
// column snapshot — under the table's read lock, so neither can race a
// concurrent writer and both outlive the lock by the cache-generation
// contract.
func (s *Store) scanLeafSet(root part.OID, seg, replica int, leaf part.OID, withCols bool) ([]vec.View, []types.Row, error) {
	td, err := s.data(root)
	if err != nil {
		return nil, nil, err
	}
	if seg < 0 || seg >= s.segments {
		return nil, nil, fmt.Errorf("storage: segment %d out of range", seg)
	}
	if replica < 0 || replica >= NumReplicas {
		return nil, nil, fmt.Errorf("storage: replica %d out of range", replica)
	}
	if err := s.faults.Hit(nil, fault.StorageScan, seg); err != nil {
		return nil, nil, fmt.Errorf("storage: table %q leaf %d on seg %d: %w", td.tab.Name, leaf, seg, err)
	}
	if !s.ReplicaAlive(seg, replica) {
		return nil, nil, &DeadSegmentError{Seg: seg, Replica: replica}
	}
	td.mu.RLock()
	defer td.mu.RUnlock()
	h := td.heapsOf(replica)
	if h == nil {
		return nil, nil, fmt.Errorf("storage: table %q has no replica %d (mirroring disabled)", td.tab.Name, replica)
	}
	cs := h[seg][leaf]
	if cs == nil {
		return nil, nil, nil
	}
	var views []vec.View
	if withCols {
		views = cs.ViewSnapshot()
	}
	return views, cs.RowView(), nil
}

// LeafColumns returns one (segment, leaf, replica) column set for
// invariant checks (mirror byte-identity tests). Read-only.
func (s *Store) LeafColumns(root part.OID, seg, replica int, leaf part.OID) (*vec.ColumnSet, error) {
	td, err := s.data(root)
	if err != nil {
		return nil, err
	}
	td.mu.RLock()
	defer td.mu.RUnlock()
	h := td.heapsOf(replica)
	if h == nil {
		return nil, fmt.Errorf("storage: table %q has no replica %d", td.tab.Name, replica)
	}
	return h[seg][leaf], nil
}

// LeafOIDs returns the leaves to scan for a table: its partition expansion,
// or just the root OID for unpartitioned tables.
func LeafOIDs(t *catalog.Table) []part.OID {
	if t.IsPartitioned() {
		return t.Part.Expansion()
	}
	return []part.OID{t.OID}
}

// RowCount returns the total number of logical rows in the table, read
// from each segment's acting primary replica. For replicated tables, one
// copy is counted.
func (s *Store) RowCount(t *catalog.Table) (int64, error) {
	td, err := s.data(t.OID)
	if err != nil {
		return 0, err
	}
	primaries := s.PrimaryMap()
	td.mu.RLock()
	defer td.mu.RUnlock()
	var n int64
	for seg := range td.heaps {
		for _, cs := range td.heapsOf(primaries[seg])[seg] {
			n += int64(cs.Len())
		}
		if t.Dist.Kind == catalog.DistReplicated {
			break // every segment holds the same copy
		}
	}
	return n, nil
}

// LeafRowCount returns per-leaf logical row counts from the acting
// primary replicas.
func (s *Store) LeafRowCount(t *catalog.Table) (map[part.OID]int64, error) {
	td, err := s.data(t.OID)
	if err != nil {
		return nil, err
	}
	primaries := s.PrimaryMap()
	td.mu.RLock()
	defer td.mu.RUnlock()
	out := map[part.OID]int64{}
	for seg := range td.heaps {
		for leaf, cs := range td.heapsOf(primaries[seg])[seg] {
			out[leaf] += int64(cs.Len())
		}
		if t.Dist.Kind == catalog.DistReplicated {
			break
		}
	}
	return out, nil
}

// UpdateRow overwrites the row at the given RowID with newRow. When the new
// partitioning key routes to a different leaf, the row is moved (deleted
// and re-inserted), matching GPDB's split-update behaviour. The boolean
// result reports whether the row moved heaps.
func (s *Store) UpdateRow(t *catalog.Table, id RowID, newRow types.Row) (bool, error) {
	td, err := s.data(t.OID)
	if err != nil {
		return false, err
	}
	if len(newRow) != len(t.Cols) {
		return false, fmt.Errorf("storage: table %q: updated row has %d columns, want %d", t.Name, len(newRow), len(t.Cols))
	}
	newLeaf := id.Leaf
	if t.IsPartitioned() {
		newLeaf = t.Part.Route(partKeys(t, newRow))
		if newLeaf == part.InvalidOID {
			return false, fmt.Errorf("storage: table %q: updated row %s maps to no partition", t.Name, newRow)
		}
	}
	view, err := s.writeView(id.Seg)
	if err != nil {
		return false, err
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	td.invalidateIndexesLocked()
	// Apply to every live replica in the same critical section and order:
	// the swap-delete of a cross-partition move reorders identically, so
	// replica heaps (and RowID indexes) stay aligned.
	moved := false
	for rep, on := range view {
		if !on {
			continue
		}
		heaps := td.heapsOf(rep)
		cs := heaps[id.Seg][id.Leaf]
		if cs == nil || id.Idx < 0 || id.Idx >= cs.Len() {
			return false, fmt.Errorf("storage: table %q: stale RowID %+v", t.Name, id)
		}
		if newLeaf == id.Leaf {
			cs.SetRow(id.Idx, newRow)
			continue
		}
		// Move across partitions: delete from the old heap (swap with last
		// to keep the heap dense) and append to the new one on the same
		// segment.
		cs.SwapDelete(id.Idx)
		td.leafSet(heaps, id.Seg, newLeaf).AppendRow(newRow)
		moved = true
	}
	return moved, nil
}

// DeleteRow removes the row at the given RowID with a swap-delete (the
// heap's last row moves into the hole, so callers deleting in bulk must
// process each heap in descending index order).
func (s *Store) DeleteRow(t *catalog.Table, id RowID) error {
	td, err := s.data(t.OID)
	if err != nil {
		return err
	}
	view, err := s.writeView(id.Seg)
	if err != nil {
		return err
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	td.invalidateIndexesLocked()
	for rep, on := range view {
		if !on {
			continue
		}
		cs := td.heapsOf(rep)[id.Seg][id.Leaf]
		if cs == nil || id.Idx < 0 || id.Idx >= cs.Len() {
			return fmt.Errorf("storage: table %q: stale RowID %+v", t.Name, id)
		}
		cs.SwapDelete(id.Idx)
	}
	return nil
}

// Truncate removes all rows of a table.
func (s *Store) Truncate(t *catalog.Table) error {
	td, err := s.data(t.OID)
	if err != nil {
		return err
	}
	views := make([][NumReplicas]bool, s.segments)
	for seg := range views {
		v, err := s.writeView(seg)
		if err != nil {
			return err
		}
		views[seg] = v
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	td.invalidateIndexesLocked()
	for seg := range td.heaps {
		for rep, on := range views[seg] {
			if on {
				td.heapsOf(rep)[seg] = map[part.OID]*vec.ColumnSet{}
			}
		}
	}
	return nil
}
