// Package storage implements the in-memory MPP storage substrate: every
// table's rows live in per-(segment × leaf-partition) heaps. Inserts route
// tuples to a leaf with the partitioning function fT and to a segment with
// the distribution policy; replicated tables hold a full copy per segment.
//
// The layout mirrors what the paper relies on: "given a logical partition
// OID the storage layer can locate and retrieve the tuples belonging to
// that partition" (§2.1), independently on every segment.
package storage

import (
	"fmt"
	"sync"

	"partopt/internal/catalog"
	"partopt/internal/fault"
	"partopt/internal/part"
	"partopt/internal/types"
)

// RowID identifies a stored row physically: segment, leaf partition, index
// within the heap. It is the analogue of PostgreSQL's ctid and is used by
// DML to address rows produced by a scan.
type RowID struct {
	Seg  int
	Leaf part.OID
	Idx  int
}

// tableData holds one table's rows and secondary indexes.
type tableData struct {
	tab *catalog.Table
	mu  sync.RWMutex
	// heaps[segment][leafOID] — for unpartitioned tables the single heap
	// is keyed by the table's root OID.
	heaps   []map[part.OID][]types.Row
	indexes []*tableIndex
}

// Store is the storage layer of one simulated cluster.
type Store struct {
	segments int
	mu       sync.RWMutex
	tables   map[part.OID]*tableData
	faults   *fault.Injector
}

// SetFaults arms (or, with nil, disarms) storage-layer fault injection —
// the fault.StorageScan point in ScanLeaf. Arm it before running queries;
// it is not synchronized against in-flight scans.
func (s *Store) SetFaults(in *fault.Injector) { s.faults = in }

// NewStore creates storage for a cluster with the given segment count.
func NewStore(segments int) *Store {
	if segments < 1 {
		panic("storage: need at least one segment")
	}
	return &Store{segments: segments, tables: map[part.OID]*tableData{}}
}

// Segments returns the cluster's segment count.
func (s *Store) Segments() int { return s.segments }

// CreateTable allocates heaps for a catalog table.
func (s *Store) CreateTable(t *catalog.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[t.OID]; exists {
		panic(fmt.Sprintf("storage: table %q already created", t.Name))
	}
	td := &tableData{tab: t, heaps: make([]map[part.OID][]types.Row, s.segments)}
	for i := range td.heaps {
		td.heaps[i] = map[part.OID][]types.Row{}
	}
	s.tables[t.OID] = td
}

func (s *Store) data(root part.OID) (*tableData, error) {
	s.mu.RLock()
	td, ok := s.tables[root]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: no table with OID %d", root)
	}
	return td, nil
}

// partKeys extracts the per-level partitioning key datums from a row.
func partKeys(t *catalog.Table, row types.Row) []types.Datum {
	ords := t.Part.KeyOrds()
	keys := make([]types.Datum, len(ords))
	for i, o := range ords {
		keys[i] = row[o]
	}
	return keys
}

// targetSegment computes the home segment of a row under hash distribution.
func (s *Store) targetSegment(t *catalog.Table, row types.Row) int {
	h := types.HashRow(row, t.Dist.KeyOrds)
	return int(h % uint64(s.segments))
}

// Insert routes one row to its leaf partition and segment(s). It returns
// an error for rows that map to no partition (fT = ⊥) or have the wrong
// arity.
func (s *Store) Insert(t *catalog.Table, row types.Row) error {
	td, err := s.data(t.OID)
	if err != nil {
		return err
	}
	if len(row) != len(t.Cols) {
		return fmt.Errorf("storage: table %q: row has %d columns, want %d", t.Name, len(row), len(t.Cols))
	}
	leaf := t.OID
	if t.IsPartitioned() {
		leaf = t.Part.Route(partKeys(t, row))
		if leaf == part.InvalidOID {
			return fmt.Errorf("storage: table %q: row %s maps to no partition", t.Name, row)
		}
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	td.invalidateIndexesLocked()
	if t.Dist.Kind == catalog.DistReplicated {
		for seg := range td.heaps {
			td.heaps[seg][leaf] = append(td.heaps[seg][leaf], row.Clone())
		}
		return nil
	}
	seg := s.targetSegment(t, row)
	td.heaps[seg][leaf] = append(td.heaps[seg][leaf], row)
	return nil
}

// InsertBatch inserts many rows, stopping at the first error.
func (s *Store) InsertBatch(t *catalog.Table, rows []types.Row) error {
	for _, r := range rows {
		if err := s.Insert(t, r); err != nil {
			return err
		}
	}
	return nil
}

// ScanLeaf returns the heap of one (segment, leaf). The returned slice is
// owned by the store; callers must not mutate it.
func (s *Store) ScanLeaf(root part.OID, seg int, leaf part.OID) ([]types.Row, error) {
	td, err := s.data(root)
	if err != nil {
		return nil, err
	}
	if seg < 0 || seg >= s.segments {
		return nil, fmt.Errorf("storage: segment %d out of range", seg)
	}
	if err := s.faults.Hit(nil, fault.StorageScan, seg); err != nil {
		return nil, fmt.Errorf("storage: table %q leaf %d on seg %d: %w", td.tab.Name, leaf, seg, err)
	}
	td.mu.RLock()
	defer td.mu.RUnlock()
	return td.heaps[seg][leaf], nil
}

// LeafOIDs returns the leaves to scan for a table: its partition expansion,
// or just the root OID for unpartitioned tables.
func LeafOIDs(t *catalog.Table) []part.OID {
	if t.IsPartitioned() {
		return t.Part.Expansion()
	}
	return []part.OID{t.OID}
}

// RowCount returns the total number of logical rows in the table. For
// replicated tables, one copy is counted.
func (s *Store) RowCount(t *catalog.Table) (int64, error) {
	td, err := s.data(t.OID)
	if err != nil {
		return 0, err
	}
	td.mu.RLock()
	defer td.mu.RUnlock()
	var n int64
	for seg := range td.heaps {
		for _, rows := range td.heaps[seg] {
			n += int64(len(rows))
		}
		if t.Dist.Kind == catalog.DistReplicated {
			break // every segment holds the same copy
		}
	}
	return n, nil
}

// LeafRowCount returns per-leaf logical row counts.
func (s *Store) LeafRowCount(t *catalog.Table) (map[part.OID]int64, error) {
	td, err := s.data(t.OID)
	if err != nil {
		return nil, err
	}
	td.mu.RLock()
	defer td.mu.RUnlock()
	out := map[part.OID]int64{}
	for seg := range td.heaps {
		for leaf, rows := range td.heaps[seg] {
			out[leaf] += int64(len(rows))
		}
		if t.Dist.Kind == catalog.DistReplicated {
			break
		}
	}
	return out, nil
}

// UpdateRow overwrites the row at the given RowID with newRow. When the new
// partitioning key routes to a different leaf, the row is moved (deleted
// and re-inserted), matching GPDB's split-update behaviour. The boolean
// result reports whether the row moved heaps.
func (s *Store) UpdateRow(t *catalog.Table, id RowID, newRow types.Row) (bool, error) {
	td, err := s.data(t.OID)
	if err != nil {
		return false, err
	}
	if len(newRow) != len(t.Cols) {
		return false, fmt.Errorf("storage: table %q: updated row has %d columns, want %d", t.Name, len(newRow), len(t.Cols))
	}
	newLeaf := id.Leaf
	if t.IsPartitioned() {
		newLeaf = t.Part.Route(partKeys(t, newRow))
		if newLeaf == part.InvalidOID {
			return false, fmt.Errorf("storage: table %q: updated row %s maps to no partition", t.Name, newRow)
		}
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	td.invalidateIndexesLocked()
	heap := td.heaps[id.Seg][id.Leaf]
	if id.Idx < 0 || id.Idx >= len(heap) {
		return false, fmt.Errorf("storage: table %q: stale RowID %+v", t.Name, id)
	}
	if newLeaf == id.Leaf {
		heap[id.Idx] = newRow
		return false, nil
	}
	// Move across partitions: delete from the old heap (swap with last to
	// keep the heap dense) and append to the new one on the same segment.
	last := len(heap) - 1
	heap[id.Idx] = heap[last]
	td.heaps[id.Seg][id.Leaf] = heap[:last]
	td.heaps[id.Seg][newLeaf] = append(td.heaps[id.Seg][newLeaf], newRow)
	return true, nil
}

// DeleteRow removes the row at the given RowID with a swap-delete (the
// heap's last row moves into the hole, so callers deleting in bulk must
// process each heap in descending index order).
func (s *Store) DeleteRow(t *catalog.Table, id RowID) error {
	td, err := s.data(t.OID)
	if err != nil {
		return err
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	td.invalidateIndexesLocked()
	heap := td.heaps[id.Seg][id.Leaf]
	if id.Idx < 0 || id.Idx >= len(heap) {
		return fmt.Errorf("storage: table %q: stale RowID %+v", t.Name, id)
	}
	last := len(heap) - 1
	heap[id.Idx] = heap[last]
	td.heaps[id.Seg][id.Leaf] = heap[:last]
	return nil
}

// Truncate removes all rows of a table.
func (s *Store) Truncate(t *catalog.Table) error {
	td, err := s.data(t.OID)
	if err != nil {
		return err
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	td.invalidateIndexesLocked()
	for seg := range td.heaps {
		td.heaps[seg] = map[part.OID][]types.Row{}
	}
	return nil
}
