package storage

import (
	"testing"

	"partopt/internal/catalog"
	"partopt/internal/types"
)

// Columnar-layout invariants: batch inserts land exactly where row-at-a-time
// inserts would (same leaves, same heap order, both replicas), failed batches
// apply nothing, and mirror failover/resync reproduces the survivor's column
// vectors bit for bit — not just the same row multiset.

func batchRows(n int64) []types.Row {
	rows := make([]types.Row, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, types.Row{types.NewInt(i), types.NewInt(i % 30)})
	}
	return rows
}

func TestInsertBatchDualApply(t *testing.T) {
	_, st, tab := newFixture(t, 4)
	st.EnableMirrors()
	if err := st.InsertBatch(tab, batchRows(100)); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	if n, err := st.RowCount(tab); err != nil || n != 100 {
		t.Fatalf("RowCount = %d (%v), want 100", n, err)
	}
	assertReplicasIdentical(t, st, tab)

	// A second batch appends after the first on both replicas.
	if err := st.InsertBatch(tab, batchRows(50)); err != nil {
		t.Fatalf("second InsertBatch: %v", err)
	}
	if n, _ := st.RowCount(tab); n != 150 {
		t.Fatalf("RowCount after second batch = %d, want 150", n)
	}
	assertReplicasIdentical(t, st, tab)
}

// TestInsertBatchMatchesRowAtATime loads the same rows through InsertBatch
// and through Insert and requires identical heap contents in identical
// order — RowIDs assigned under either path must agree.
func TestInsertBatchMatchesRowAtATime(t *testing.T) {
	_, stBatch, tabBatch := newFixture(t, 4)
	_, stRow, tabRow := newFixture(t, 4)
	rows := batchRows(100)
	if err := stBatch.InsertBatch(tabBatch, rows); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	for i, r := range rows {
		if err := stRow.Insert(tabRow, r); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	for seg := 0; seg < 4; seg++ {
		b := replicaDump(t, stBatch, tabBatch, seg, 0)
		r := replicaDump(t, stRow, tabRow, seg, 0)
		if b != r {
			t.Fatalf("seg %d: batch and row-at-a-time heaps differ:\nbatch:\n%s\nrow:\n%s", seg, b, r)
		}
	}
}

// TestInsertBatchAllOrNothing: a batch with one unroutable row must apply
// none of its rows.
func TestInsertBatchAllOrNothing(t *testing.T) {
	_, st, tab := newFixture(t, 4)
	st.EnableMirrors()
	rows := batchRows(10)
	rows = append(rows, types.Row{types.NewInt(1), types.NewInt(99)}) // outside all partitions
	if err := st.InsertBatch(tab, rows); err == nil {
		t.Fatalf("batch with unroutable row accepted")
	}
	if n, _ := st.RowCount(tab); n != 0 {
		t.Fatalf("partial apply: RowCount = %d after failed batch, want 0", n)
	}
	// NULL partition key and wrong arity also poison the whole batch.
	for _, bad := range []types.Row{
		{types.NewInt(1), types.Null},
		{types.NewInt(1)},
	} {
		if err := st.InsertBatch(tab, append(batchRows(5), bad)); err == nil {
			t.Fatalf("batch with bad row %v accepted", bad)
		}
	}
	if n, _ := st.RowCount(tab); n != 0 {
		t.Fatalf("RowCount = %d after failed batches, want 0", n)
	}
}

// assertColumnVectorsIdentical requires both replicas of every (seg × leaf)
// heap to hold bit-identical column vectors — same kinds, same lane
// contents, same null bitmaps — via vec.DataEqual, which is stricter than
// comparing row views.
func assertColumnVectorsIdentical(t *testing.T, st *Store, tab *catalog.Table) {
	t.Helper()
	for seg := 0; seg < st.Segments(); seg++ {
		for _, leaf := range LeafOIDs(tab) {
			p, err := st.LeafColumns(tab.OID, seg, 0, leaf)
			if err != nil {
				t.Fatalf("LeafColumns(seg %d, rep 0, leaf %d): %v", seg, leaf, err)
			}
			m, err := st.LeafColumns(tab.OID, seg, 1, leaf)
			if err != nil {
				t.Fatalf("LeafColumns(seg %d, rep 1, leaf %d): %v", seg, leaf, err)
			}
			switch {
			case p == nil && m == nil:
			case p == nil || m == nil:
				t.Fatalf("seg %d leaf %d: one replica empty, the other not", seg, leaf)
			case !p.DataEqual(m):
				t.Fatalf("seg %d leaf %d: column vectors diverged", seg, leaf)
			}
		}
	}
}

// TestMirrorResyncColumnIdentity drives a replica through kill → failover
// DML → revive and requires the resynced column vectors to be identical to
// the survivor's, leaf by leaf.
func TestMirrorResyncColumnIdentity(t *testing.T) {
	_, st, tab := newFixture(t, 4)
	st.EnableMirrors()
	if err := st.InsertBatch(tab, batchRows(60)); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	assertColumnVectorsIdentical(t, st, tab)

	if err := st.KillReplica(1, 0); err != nil {
		t.Fatalf("KillReplica: %v", err)
	}
	if err := st.Promote(1); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	// DML during the outage: inserts, an update, and a delete against the
	// surviving mirror.
	if err := st.InsertBatch(tab, batchRows(30)); err != nil {
		t.Fatalf("InsertBatch during outage: %v", err)
	}
	leaf := tab.Part.Route([]types.Datum{types.NewInt(5)})
	for seg := 0; seg < st.Segments(); seg++ {
		rows, err := st.ScanLeafAt(tab.OID, seg, st.Primary(seg), leaf)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if len(rows) == 0 {
			continue
		}
		if _, err := st.UpdateRow(tab, RowID{Seg: seg, Leaf: leaf, Idx: 0},
			types.Row{types.NewInt(777), rows[0][1]}); err != nil {
			t.Fatalf("update during outage: %v", err)
		}
		if err := st.DeleteRow(tab, RowID{Seg: seg, Leaf: leaf, Idx: len(rows) - 1}); err != nil {
			t.Fatalf("delete during outage: %v", err)
		}
		break
	}

	if err := st.ReviveReplica(1, 0); err != nil {
		t.Fatalf("ReviveReplica: %v", err)
	}
	assertColumnVectorsIdentical(t, st, tab)
	assertReplicasIdentical(t, st, tab)
}
