package storage

import (
	"fmt"
	"sort"

	"partopt/internal/catalog"
	"partopt/internal/part"
	"partopt/internal/types"
)

// Secondary indexes (the paper's stated future work). Each index covers one
// column; partitioned tables get one physical index per (segment × leaf)
// heap, which is what lets an index scan compose with partition selection:
// a DynamicIndexScan looks up only the leaves its PartitionSelector chose.
//
// Indexes are rebuilt lazily: any mutation of the table marks them stale,
// and the next lookup rebuilds the touched heap's entries. That favours the
// load-then-analyze-then-query pattern of analytic workloads over
// OLTP-style incremental maintenance.

// idxEntry pairs a key with its row and the row's heap position. Rows are
// shared with the heap at build time; staleness tracking keeps lookups
// (and the positions, which DML uses as RowIDs) consistent after mutation.
type idxEntry struct {
	key types.Datum
	row types.Row
	pos int
}

// tableIndex is one secondary index of one table.
type tableIndex struct {
	def  catalog.IndexDef
	segs []map[part.OID][]idxEntry
	// built is false until the first lookup after a mutation.
	built bool
}

// CreateIndex registers (and builds on next use) an index over one column.
func (s *Store) CreateIndex(t *catalog.Table, def catalog.IndexDef) error {
	if def.ColOrd < 0 || def.ColOrd >= len(t.Cols) {
		return fmt.Errorf("storage: index %q column ordinal %d out of range", def.Name, def.ColOrd)
	}
	td, err := s.data(t.OID)
	if err != nil {
		return err
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	for _, idx := range td.indexes {
		if idx.def.Name == def.Name {
			return fmt.Errorf("storage: index %q already exists", def.Name)
		}
	}
	td.indexes = append(td.indexes, &tableIndex{
		def:  def,
		segs: make([]map[part.OID][]idxEntry, s.segments),
	})
	return nil
}

// invalidateIndexesLocked marks every index of the table stale. Callers
// hold td.mu.
func (td *tableData) invalidateIndexesLocked() {
	for _, idx := range td.indexes {
		idx.built = false
	}
}

// rebuildLocked re-sorts every heap's entries, reading each segment's
// acting primary replica (primaries is snapshotted before td.mu is taken
// — lock order is Store.mu before tableData.mu). Replica heaps are kept
// identical by the dual-apply DML path, so entries built from the primary
// are valid for lookups against either replica.
func (idx *tableIndex) rebuildLocked(td *tableData, primaries []int) {
	for seg := range td.heaps {
		m := map[part.OID][]idxEntry{}
		for leaf, cs := range td.heapsOf(primaries[seg])[seg] {
			rows := cs.RowView()
			entries := make([]idxEntry, 0, len(rows))
			for pos, row := range rows {
				entries = append(entries, idxEntry{key: row[idx.def.ColOrd], row: row, pos: pos})
			}
			sort.SliceStable(entries, func(i, j int) bool {
				return types.Compare(entries[i].key, entries[j].key) < 0
			})
			m[leaf] = entries
		}
		idx.segs[seg] = m
	}
	idx.built = true
}

// IndexLookup returns the rows of one (segment × leaf) heap whose indexed
// column falls inside the interval set, using binary search per interval,
// together with each row's identity (valid until the next mutation). The
// result over-approximates only as much as the set does. Reads go to the
// segment's acting primary replica; IndexLookupAt addresses a specific one.
func (s *Store) IndexLookup(t *catalog.Table, indexName string, seg int, leaf part.OID, set types.IntervalSet) ([]types.Row, []RowID, error) {
	rep := 0
	if seg >= 0 && seg < s.segments {
		rep = s.Primary(seg)
	}
	return s.IndexLookupAt(t, indexName, seg, rep, leaf, set)
}

// IndexLookupAt is IndexLookup against one named replica: the executor's
// replica-dispatched variant. Looking up a dead replica fails with
// *DeadSegmentError.
func (s *Store) IndexLookupAt(t *catalog.Table, indexName string, seg, replica int, leaf part.OID, set types.IntervalSet) ([]types.Row, []RowID, error) {
	td, err := s.data(t.OID)
	if err != nil {
		return nil, nil, err
	}
	if seg < 0 || seg >= s.segments {
		return nil, nil, fmt.Errorf("storage: segment %d out of range", seg)
	}
	if replica < 0 || replica >= NumReplicas {
		return nil, nil, fmt.Errorf("storage: replica %d out of range", replica)
	}
	if !s.ReplicaAlive(seg, replica) {
		return nil, nil, &DeadSegmentError{Seg: seg, Replica: replica}
	}
	primaries := s.PrimaryMap() // before td.mu: lock order Store.mu → tableData.mu
	td.mu.Lock()
	defer td.mu.Unlock()
	var idx *tableIndex
	for _, cand := range td.indexes {
		if cand.def.Name == indexName {
			idx = cand
			break
		}
	}
	if idx == nil {
		return nil, nil, fmt.Errorf("storage: table %q has no index %q", t.Name, indexName)
	}
	if !idx.built {
		idx.rebuildLocked(td, primaries)
	}
	entries := idx.segs[seg][leaf]

	// Resolve each interval to an entry range, then merge the ranges so
	// overlapping intervals (an unnormalized set from an OR) emit each row
	// once. NULL keys sort first and belong to no interval.
	type span struct{ lo, hi int }
	var spans []span
	for _, iv := range set.Ivs {
		lo := 0
		if !iv.LoUnb {
			lo = sort.Search(len(entries), func(i int) bool {
				if entries[i].key.IsNull() {
					return false
				}
				c := types.Compare(entries[i].key, iv.Lo)
				if iv.LoIncl {
					return c >= 0
				}
				return c > 0
			})
		} else {
			// Skip the NULL prefix.
			lo = sort.Search(len(entries), func(i int) bool { return !entries[i].key.IsNull() })
		}
		hi := len(entries)
		if !iv.HiUnb {
			hi = sort.Search(len(entries), func(i int) bool {
				if entries[i].key.IsNull() {
					return false
				}
				c := types.Compare(entries[i].key, iv.Hi)
				if iv.HiIncl {
					return c > 0
				}
				return c >= 0
			})
		}
		if lo < hi {
			spans = append(spans, span{lo: lo, hi: hi})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	var out []types.Row
	var ids []RowID
	last := 0
	for _, sp := range spans {
		if sp.lo < last {
			sp.lo = last
		}
		for i := sp.lo; i < sp.hi; i++ {
			out = append(out, entries[i].row)
			ids = append(ids, RowID{Seg: seg, Leaf: leaf, Idx: entries[i].pos})
		}
		if sp.hi > last {
			last = sp.hi
		}
	}
	return out, ids, nil
}
