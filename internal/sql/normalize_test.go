package sql

import (
	"testing"

	"partopt/internal/types"
)

func normalize(t *testing.T, src string) *Normalized {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", src, stmt)
	}
	return NormalizeSelect(sel)
}

// Textually distinct point queries must share one fingerprint, carrying
// their literals as trailing parameters.
func TestNormalizePointQueriesShareFingerprint(t *testing.T) {
	a := normalize(t, "SELECT amount FROM orders WHERE id = 7")
	b := normalize(t, "SELECT amount FROM orders WHERE id = 12345")
	if a.Text != b.Text {
		t.Fatalf("fingerprints differ:\n%s\n%s", a.Text, b.Text)
	}
	if len(a.Extra) != 1 || a.Extra[0].Int() != 7 {
		t.Errorf("a.Extra = %v, want [7]", a.Extra)
	}
	if len(b.Extra) != 1 || b.Extra[0].Int() != 12345 {
		t.Errorf("b.Extra = %v, want [12345]", b.Extra)
	}
	want := "SELECT amount FROM orders WHERE (id = $1)"
	if a.Text != want {
		t.Errorf("Text = %q, want %q", a.Text, want)
	}
}

// Lifted parameters are numbered after the statement's explicit ones, and
// NumExplicit reports what the caller must still supply.
func TestNormalizeAfterExplicitParams(t *testing.T) {
	n := normalize(t, "SELECT amount FROM orders WHERE id = $1 AND qty > 3")
	if n.NumExplicit != 1 {
		t.Fatalf("NumExplicit = %d, want 1", n.NumExplicit)
	}
	if len(n.Extra) != 1 || n.Extra[0].Int() != 3 {
		t.Fatalf("Extra = %v, want [3]", n.Extra)
	}
	want := "SELECT amount FROM orders WHERE ((id = $1) AND (qty > $2))"
	if n.Text != want {
		t.Errorf("Text = %q, want %q", n.Text, want)
	}
}

// String literals stay inline (the binder coerces string constants to
// dates; parameters would skip that), as do bools and NULL.
func TestNormalizeKeepsStringsInline(t *testing.T) {
	n := normalize(t, "SELECT * FROM orders WHERE date BETWEEN '2013-10-01' AND '2013-12-31' AND ok = TRUE")
	if len(n.Extra) != 0 {
		t.Fatalf("Extra = %v, want none", n.Extra)
	}
	want := "SELECT * FROM orders WHERE ((date BETWEEN '2013-10-01' AND '2013-12-31') AND (ok = TRUE))"
	if n.Text != want {
		t.Errorf("Text = %q, want %q", n.Text, want)
	}
}

// date '...' literals already carry date kind and lift safely.
func TestNormalizeLiftsDateLiterals(t *testing.T) {
	a := normalize(t, "SELECT * FROM orders WHERE date < date '2013-10-01'")
	b := normalize(t, "SELECT * FROM orders WHERE date < date '2012-01-01'")
	if a.Text != b.Text {
		t.Fatalf("fingerprints differ:\n%s\n%s", a.Text, b.Text)
	}
	if len(a.Extra) != 1 || a.Extra[0].Kind() != types.KindDate {
		t.Fatalf("Extra = %v, want one date", a.Extra)
	}
}

// SELECT items, GROUP BY, ORDER BY ordinals and LIMIT are structural:
// their literals must survive normalization untouched.
func TestNormalizeLeavesStructuralLiterals(t *testing.T) {
	n := normalize(t, "SELECT qty * 2, count(*) AS n FROM orders WHERE qty > 10 GROUP BY qty * 2 ORDER BY 1 DESC LIMIT 5")
	if len(n.Extra) != 1 || n.Extra[0].Int() != 10 {
		t.Fatalf("Extra = %v, want [10]", n.Extra)
	}
	want := "SELECT (qty * 2), COUNT(*) AS n FROM orders WHERE (qty > $1) GROUP BY (qty * 2) ORDER BY 1 DESC LIMIT 5"
	if n.Text != want {
		t.Errorf("Text = %q, want %q", n.Text, want)
	}
}

// The parser expands -5 to (0 - 5); normalization folds the pair back into
// a single negated parameter.
func TestNormalizeFoldsNegativeLiterals(t *testing.T) {
	a := normalize(t, "SELECT * FROM t WHERE k = -5")
	b := normalize(t, "SELECT * FROM t WHERE k = -9")
	if a.Text != b.Text {
		t.Fatalf("fingerprints differ:\n%s\n%s", a.Text, b.Text)
	}
	if len(a.Extra) != 1 || a.Extra[0].Int() != -5 {
		t.Errorf("a.Extra = %v, want [-5]", a.Extra)
	}
	if b.Extra[0].Int() != -9 {
		t.Errorf("b.Extra = %v, want [-9]", b.Extra)
	}
}

// IN lists lift per element (list length stays part of the fingerprint),
// and IN-subquery WHERE clauses are lifted too.
func TestNormalizeInListAndSubquery(t *testing.T) {
	n := normalize(t, "SELECT * FROM t WHERE k IN (1, 2, 3)")
	if len(n.Extra) != 3 {
		t.Fatalf("Extra = %v, want 3 values", n.Extra)
	}
	want := "SELECT * FROM t WHERE (k IN ($1, $2, $3))"
	if n.Text != want {
		t.Errorf("Text = %q, want %q", n.Text, want)
	}

	a := normalize(t, "SELECT avg(x) FROM f WHERE k IN (SELECT k FROM d WHERE y = 2013)")
	b := normalize(t, "SELECT avg(x) FROM f WHERE k IN (SELECT k FROM d WHERE y = 2012)")
	if a.Text != b.Text {
		t.Fatalf("subquery fingerprints differ:\n%s\n%s", a.Text, b.Text)
	}
	if len(a.Extra) != 1 || a.Extra[0].Int() != 2013 {
		t.Errorf("a.Extra = %v, want [2013]", a.Extra)
	}
}

// Normalization must not mutate the parsed statement: the legacy planner
// plans the original tree and needs its literal values.
func TestNormalizeDoesNotMutateInput(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE k = 42")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sel := stmt.(*SelectStmt)
	before := FormatSelect(sel)
	_ = NormalizeSelect(sel)
	if after := FormatSelect(sel); after != before {
		t.Errorf("input mutated:\nbefore %s\nafter  %s", before, after)
	}
	cmp, ok := sel.Where.(*BinOp)
	if !ok {
		t.Fatalf("Where = %T", sel.Where)
	}
	if lit, ok := cmp.R.(*Lit); !ok || lit.Val.Int() != 42 {
		t.Errorf("literal gone from input tree: %#v", cmp.R)
	}
}

// Whitespace and case variants of the same statement canonicalize to one
// text.
func TestFormatSelectCanonicalizesSpacing(t *testing.T) {
	a := normalize(t, "select   amount from orders where id=7")
	b := normalize(t, "SELECT amount FROM orders WHERE id = 9")
	if a.Text != b.Text {
		t.Errorf("spacing variants differ:\n%s\n%s", a.Text, b.Text)
	}
}

// LEFT/RIGHT [OUTER] JOIN: the OUTER keyword is optional noise, the ON
// clause stays attached to the joined table (folding it into WHERE would
// change the result), and the canonical text round-trips through the
// parser.
func TestNormalizeOuterJoinRoundTrip(t *testing.T) {
	a := normalize(t, "SELECT * FROM d LEFT JOIN o ON d.k = o.k")
	b := normalize(t, "select * from d left outer join o on d.k = o.k")
	if a.Text != b.Text {
		t.Fatalf("LEFT vs LEFT OUTER differ:\n%s\n%s", a.Text, b.Text)
	}
	want := "SELECT * FROM d LEFT OUTER JOIN o ON (d.k = o.k)"
	if a.Text != want {
		t.Errorf("Text = %q, want %q", a.Text, want)
	}
	r := normalize(t, "SELECT * FROM d RIGHT OUTER JOIN o ON d.k = o.k")
	if want := "SELECT * FROM d RIGHT OUTER JOIN o ON (d.k = o.k)"; r.Text != want {
		t.Errorf("Text = %q, want %q", r.Text, want)
	}
	// The rendering parses back to itself: usable as a fingerprint.
	for _, text := range []string{a.Text, r.Text} {
		if again := normalize(t, text).Text; again != text {
			t.Errorf("round trip changed text:\n%s\n%s", text, again)
		}
	}
}

// ON-clause literals are join structure, not run-time constants: they are
// never lifted, so two outer joins with different ON filters keep distinct
// fingerprints while their WHERE literals still parameterize.
func TestNormalizeOuterJoinOnLiteralsStayInline(t *testing.T) {
	a := normalize(t, "SELECT * FROM d LEFT JOIN o ON d.k = o.k AND d.y = 2013 WHERE o.q > 5")
	b := normalize(t, "SELECT * FROM d LEFT JOIN o ON d.k = o.k AND d.y = 2013 WHERE o.q > 99")
	if a.Text != b.Text {
		t.Fatalf("WHERE variants differ:\n%s\n%s", a.Text, b.Text)
	}
	if len(a.Extra) != 1 || a.Extra[0].Int() != 5 {
		t.Errorf("a.Extra = %v, want [5]", a.Extra)
	}
	c := normalize(t, "SELECT * FROM d LEFT JOIN o ON d.k = o.k AND d.y = 1999 WHERE o.q > 5")
	if c.Text == a.Text {
		t.Errorf("different ON literals share a fingerprint: %s", c.Text)
	}
	want := "SELECT * FROM d LEFT OUTER JOIN o ON ((d.k = o.k) AND (d.y = 2013)) WHERE (o.q > $1)"
	if a.Text != want {
		t.Errorf("Text = %q, want %q", a.Text, want)
	}
}

// Explicit $n parameters inside an ON clause count toward NumExplicit, and
// lifted WHERE literals number after them.
func TestNormalizeOuterJoinOnParamsCounted(t *testing.T) {
	n := normalize(t, "SELECT * FROM d LEFT JOIN o ON d.k = o.k AND d.y = $1 WHERE o.q > 5")
	if n.NumExplicit != 1 {
		t.Fatalf("NumExplicit = %d, want 1", n.NumExplicit)
	}
	want := "SELECT * FROM d LEFT OUTER JOIN o ON ((d.k = o.k) AND (d.y = $1)) WHERE (o.q > $2)"
	if n.Text != want {
		t.Errorf("Text = %q, want %q", n.Text, want)
	}
	if len(n.Extra) != 1 || n.Extra[0].Int() != 5 {
		t.Errorf("Extra = %v, want [5]", n.Extra)
	}
}
