package sql

import (
	"fmt"

	"partopt/internal/catalog"
	"partopt/internal/expr"
	"partopt/internal/logical"
	"partopt/internal/plan"
	"partopt/internal/types"
)

// Bound is the result of semantic analysis: a logical tree plus result
// metadata.
type Bound struct {
	Root      logical.Node
	Columns   []string // output column names (empty for DML)
	NumParams int
	IsUpdate  bool

	// Presentation shell, applied above the optimized plan on the
	// coordinator: ORDER BY keys over the output columns, and LIMIT
	// (-1 when absent).
	OrderBy []plan.SortKey
	Limit   int64
}

// Bind resolves names against the catalog and lowers a parsed statement to
// the logical algebra. IN-subqueries become semi joins with the subquery on
// the build (first-executed) side — the shape that enables dynamic
// partition elimination (paper Fig. 4).
func Bind(cat *catalog.Catalog, stmt Statement) (*Bound, error) {
	b := &binder{cat: cat, nextRel: 1}
	switch s := stmt.(type) {
	case *SelectStmt:
		root, cols, err := b.bindSelect(s)
		if err != nil {
			return nil, err
		}
		order, err := resolveOrderBy(s.OrderBy, cols)
		if err != nil {
			return nil, err
		}
		return &Bound{Root: root, Columns: cols, NumParams: b.numParams, OrderBy: order, Limit: s.Limit}, nil
	case *UpdateStmt:
		root, err := b.bindUpdate(s)
		if err != nil {
			return nil, err
		}
		return &Bound{Root: root, Columns: []string{"updated"}, NumParams: b.numParams, IsUpdate: true, Limit: -1}, nil
	case *DeleteStmt:
		root, err := b.bindDelete(s)
		if err != nil {
			return nil, err
		}
		return &Bound{Root: root, Columns: []string{"deleted"}, NumParams: b.numParams, IsUpdate: true, Limit: -1}, nil
	default:
		return nil, fmt.Errorf("sql: cannot bind %T", stmt)
	}
}

// relRef is one in-scope relation.
type relRef struct {
	alias string
	tab   *catalog.Table
	rel   int
}

type binder struct {
	cat       *catalog.Catalog
	nextRel   int
	numParams int
	colKinds  map[expr.ColID]types.Kind
}

type scope struct {
	rels []relRef
}

func (s *scope) lookup(qual, name string) (relRef, int, error) {
	var found []relRef
	var ord int
	for _, r := range s.rels {
		if qual != "" && r.alias != qual {
			continue
		}
		if o, ok := r.tab.ColOrd(name); ok {
			found = append(found, r)
			ord = o
		} else if qual != "" {
			return relRef{}, 0, fmt.Errorf("sql: column %q not found in %s", name, qual)
		}
	}
	switch len(found) {
	case 0:
		if qual != "" {
			return relRef{}, 0, fmt.Errorf("sql: unknown table or alias %q", qual)
		}
		return relRef{}, 0, fmt.Errorf("sql: unknown column %q", name)
	case 1:
		return found[0], ord, nil
	default:
		return relRef{}, 0, fmt.Errorf("sql: ambiguous column %q", name)
	}
}

func (b *binder) addTables(sc *scope, refs []TableRef) error {
	for _, ref := range refs {
		tab, ok := b.cat.Table(ref.Name)
		if !ok {
			return fmt.Errorf("sql: unknown table %q", ref.Name)
		}
		for _, r := range sc.rels {
			if r.alias == ref.Alias {
				return fmt.Errorf("sql: duplicate table alias %q", ref.Alias)
			}
		}
		rel := b.nextRel
		b.nextRel++
		sc.rels = append(sc.rels, relRef{alias: ref.Alias, tab: tab, rel: rel})
		if b.colKinds == nil {
			b.colKinds = map[expr.ColID]types.Kind{}
		}
		for ord, col := range tab.Cols {
			b.colKinds[expr.ColID{Rel: rel, Ord: ord}] = col.Kind
		}
	}
	return nil
}

// semiJoinSpec records one IN-subquery lifted out of the WHERE clause.
type semiJoinSpec struct {
	probe expr.Expr    // the outer expression
	sub   logical.Node // the bound subquery core
	subE  expr.Expr    // the subquery's single output expression
}

func (b *binder) bindSelect(s *SelectStmt) (logical.Node, []string, error) {
	sc := &scope{}
	if err := b.addTables(sc, s.From); err != nil {
		return nil, nil, err
	}

	// Split WHERE into conjuncts; lift IN-subqueries into semi joins.
	var conjuncts []expr.Expr
	var semis []semiJoinSpec
	for _, c := range splitAnd(s.Where) {
		if in, ok := c.(*InExpr); ok && in.Sub != nil {
			spec, err := b.bindSubquery(sc, in)
			if err != nil {
				return nil, nil, err
			}
			semis = append(semis, *spec)
			continue
		}
		e, err := b.bindExpr(sc, c)
		if err != nil {
			return nil, nil, err
		}
		conjuncts = append(conjuncts, e)
	}

	tree, rest, err := b.buildJoinTree(sc, s.From, conjuncts)
	if err != nil {
		return nil, nil, err
	}
	// Semi joins: subquery on the build side, current tree as probe.
	for _, semi := range semis {
		tree = &logical.Join{
			Type:  plan.SemiJoin,
			Pred:  expr.NewCmp(expr.EQ, semi.probe, semi.subE),
			Left:  semi.sub,
			Right: tree,
		}
	}
	if rest != nil {
		tree = &logical.Select{Pred: rest, Child: tree}
	}

	return b.bindSelectList(sc, s, tree)
}

// buildJoinTree joins the scope's tables left-deep in FROM order,
// attaching each conjunct at the lowest point all its relations are
// available. It returns the tree and any leftover predicate.
//
// refs parallels sc.rels and carries the FROM clause's explicit join
// structure; outer-join steps keep their ON predicate on the join node.
// WHERE conjuncts that touch a relation exposed on the null-producing side
// of any outer join are never pushed into the tree — SQL applies WHERE
// after the joins, and below the join such a conjunct would see pre-NULL-
// extension rows — so they surface in the leftover predicate instead.
// A nil refs (DML sources) means every step is a plain inner join.
func (b *binder) buildJoinTree(sc *scope, refs []TableRef, conjuncts []expr.Expr) (logical.Node, expr.Expr, error) {
	if len(sc.rels) == 0 {
		return nil, nil, fmt.Errorf("sql: empty FROM clause")
	}
	joinOf := func(i int) JoinKind {
		if i < len(refs) {
			return refs[i].Join
		}
		return JoinNone
	}
	// Relations that can be NULL-extended by some outer join in the chain:
	// a LEFT JOIN nullifies the newly joined table, a RIGHT JOIN nullifies
	// everything joined before it.
	nullable := map[int]bool{}
	for i, r := range sc.rels {
		switch joinOf(i) {
		case JoinLeft:
			nullable[r.rel] = true
		case JoinRight:
			for _, prev := range sc.rels[:i] {
				nullable[prev.rel] = true
			}
		}
	}
	blocked := func(c expr.Expr) bool {
		for id := range expr.ColsUsed(c) {
			if nullable[id.Rel] {
				return true
			}
		}
		return false
	}
	used := make([]bool, len(conjuncts))
	avail := map[int]bool{}

	attach := func(node logical.Node, newRel int) logical.Node {
		avail[newRel] = true
		var preds []expr.Expr
		for i, c := range conjuncts {
			if used[i] || blocked(c) {
				continue
			}
			ok := true
			touchesNew := false
			for id := range expr.ColsUsed(c) {
				if !avail[id.Rel] {
					ok = false
					break
				}
				if id.Rel == newRel {
					touchesNew = true
				}
			}
			if ok && touchesNew {
				used[i] = true
				preds = append(preds, c)
			}
		}
		if p := expr.Conj(preds...); p != nil {
			return &logical.Select{Pred: p, Child: node}
		}
		return node
	}

	first := sc.rels[0]
	var tree logical.Node = &logical.Get{Table: first.tab, Rel: first.rel, Alias: first.alias}
	tree = attach(tree, first.rel)
	for ri := 1; ri < len(sc.rels); ri++ {
		r := sc.rels[ri]
		right := logical.Node(&logical.Get{Table: r.tab, Rel: r.rel, Alias: r.alias})
		if kind := joinOf(ri); kind == JoinLeft || kind == JoinRight {
			node, err := b.bindOuterJoin(sc, refs[ri], tree, right, r, avail)
			if err != nil {
				return nil, nil, err
			}
			avail[r.rel] = true
			tree = node
			continue
		}
		// Single-relation predicates go directly above the Get.
		var joinPreds, rightPreds []expr.Expr
		avail[r.rel] = true
		for i, c := range conjuncts {
			if used[i] || blocked(c) {
				continue
			}
			onlyRight := true
			allAvail := true
			touches := false
			for id := range expr.ColsUsed(c) {
				if id.Rel != r.rel {
					onlyRight = false
				} else {
					touches = true
				}
				if !avail[id.Rel] {
					allAvail = false
				}
			}
			if !touches || !allAvail {
				continue
			}
			used[i] = true
			if onlyRight {
				rightPreds = append(rightPreds, c)
			} else {
				joinPreds = append(joinPreds, c)
			}
		}
		if p := expr.Conj(rightPreds...); p != nil {
			right = &logical.Select{Pred: p, Child: right}
		}
		tree = &logical.Join{
			Type:  plan.InnerJoin,
			Pred:  expr.Conj(joinPreds...),
			Left:  tree,
			Right: right,
		}
	}
	var rest []expr.Expr
	for i, c := range conjuncts {
		if !used[i] {
			rest = append(rest, c)
		}
	}
	return tree, expr.Conj(rest...), nil
}

// bindOuterJoin lowers one LEFT/RIGHT OUTER JOIN step onto the tree built
// so far. ON conjuncts that reference only the null-producing side are
// pushed into that side (they filter match candidates, which is exactly
// what pushing achieves); every other conjunct stays on the join node,
// where a failed match NULL-extends the preserved row instead of
// discarding it.
func (b *binder) bindOuterJoin(sc *scope, ref TableRef, tree, right logical.Node, r relRef, avail map[int]bool) (logical.Node, error) {
	if ref.On == nil {
		return nil, fmt.Errorf("sql: outer join with %q needs an ON clause", ref.Name)
	}
	var joinPreds, nullSidePreds []expr.Expr
	for _, c := range splitAnd(ref.On) {
		e, err := b.bindExpr(sc, c)
		if err != nil {
			return nil, err
		}
		onlyNew, onlyTree := true, true
		for id := range expr.ColsUsed(e) {
			if id.Rel == r.rel {
				onlyTree = false
			} else if avail[id.Rel] {
				onlyNew = false
			} else {
				return nil, fmt.Errorf("sql: ON predicate %s references a relation joined later", e)
			}
		}
		nullSideOnly := (ref.Join == JoinLeft && onlyNew) || (ref.Join == JoinRight && onlyTree)
		if nullSideOnly {
			nullSidePreds = append(nullSidePreds, e)
		} else {
			joinPreds = append(joinPreds, e)
		}
	}
	if p := expr.Conj(nullSidePreds...); p != nil {
		if ref.Join == JoinLeft {
			right = &logical.Select{Pred: p, Child: right}
		} else {
			tree = &logical.Select{Pred: p, Child: tree}
		}
	}
	// Positional mapping: the tree built so far is the first (build) child,
	// so LEFT preserves the build side and RIGHT preserves the probe side.
	jt := plan.LeftOuterJoin
	if ref.Join == JoinRight {
		jt = plan.RightOuterJoin
	}
	return &logical.Join{Type: jt, Pred: expr.Conj(joinPreds...), Left: tree, Right: right}, nil
}

// bindSubquery binds an uncorrelated IN-subquery.
func (b *binder) bindSubquery(outer *scope, in *InExpr) (*semiJoinSpec, error) {
	sub := in.Sub
	if sub.Star || len(sub.Items) != 1 {
		return nil, fmt.Errorf("sql: IN subquery must select exactly one expression")
	}
	if len(sub.GroupBy) > 0 || hasAggregates(sub.Items) {
		return nil, fmt.Errorf("sql: aggregates in IN subqueries are not supported")
	}
	if len(sub.OrderBy) > 0 || sub.Limit >= 0 {
		return nil, fmt.Errorf("sql: ORDER BY/LIMIT in IN subqueries are not supported")
	}
	sc := &scope{}
	if err := b.addTables(sc, sub.From); err != nil {
		return nil, err
	}
	var conjuncts []expr.Expr
	for _, c := range splitAnd(sub.Where) {
		if inner, ok := c.(*InExpr); ok && inner.Sub != nil {
			return nil, fmt.Errorf("sql: nested IN subqueries are not supported")
		}
		e, err := b.bindExpr(sc, c)
		if err != nil {
			return nil, err
		}
		conjuncts = append(conjuncts, e)
	}
	tree, rest, err := b.buildJoinTree(sc, sub.From, conjuncts)
	if err != nil {
		return nil, err
	}
	if rest != nil {
		tree = &logical.Select{Pred: rest, Child: tree}
	}
	subE, err := b.bindExpr(sc, sub.Items[0].E)
	if err != nil {
		return nil, err
	}
	probe, err := b.bindExpr(outer, in.E)
	if err != nil {
		return nil, err
	}
	probe, subE = b.coercePair(probe, subE)
	return &semiJoinSpec{probe: probe, sub: tree, subE: subE}, nil
}

func hasAggregates(items []SelectItem) bool {
	for _, it := range items {
		if _, ok := it.E.(*FuncCall); ok {
			return true
		}
	}
	return false
}

// bindSelectList attaches GroupBy and Project shells for the SELECT list.
func (b *binder) bindSelectList(sc *scope, s *SelectStmt, tree logical.Node) (logical.Node, []string, error) {
	if s.Star {
		if len(s.GroupBy) > 0 {
			return nil, nil, fmt.Errorf("sql: SELECT * with GROUP BY is not supported")
		}
		projRel := b.nextRel
		b.nextRel++
		var cols []plan.ProjCol
		var names []string
		for _, r := range sc.rels {
			for ord, c := range r.tab.Cols {
				id := expr.ColID{Rel: r.rel, Ord: ord}
				name := c.Name
				if len(sc.rels) > 1 {
					name = r.alias + "." + c.Name
				}
				cols = append(cols, plan.ProjCol{
					E:    expr.NewCol(id, name),
					Name: name,
					Out:  expr.ColID{Rel: projRel, Ord: len(cols)},
				})
				names = append(names, name)
			}
		}
		return &logical.Project{Cols: cols, Child: tree}, names, nil
	}

	// Classify items into aggregates and plain expressions.
	hasAgg := false
	for _, it := range s.Items {
		if _, ok := it.E.(*FuncCall); ok {
			hasAgg = true
		}
	}
	if !hasAgg && len(s.GroupBy) == 0 {
		projRel := b.nextRel
		b.nextRel++
		var cols []plan.ProjCol
		var names []string
		for i, it := range s.Items {
			e, err := b.bindExpr(sc, it.E)
			if err != nil {
				return nil, nil, err
			}
			name := outputName(it, e)
			cols = append(cols, plan.ProjCol{E: e, Name: name, Out: expr.ColID{Rel: projRel, Ord: i}})
			names = append(names, name)
		}
		return &logical.Project{Cols: cols, Child: tree}, names, nil
	}

	// Aggregation query: GROUP BY expressions plus aggregate items.
	aggRel := b.nextRel
	b.nextRel++
	var groups []plan.GroupCol
	groupOut := map[string]expr.ColID{} // bound expr string → output col
	for _, ge := range s.GroupBy {
		e, err := b.bindExpr(sc, ge)
		if err != nil {
			return nil, nil, err
		}
		out := expr.ColID{Rel: aggRel, Ord: len(groups)}
		groups = append(groups, plan.GroupCol{E: e, Name: e.String(), Out: out})
		groupOut[e.String()] = out
	}
	var aggs []plan.AggSpec
	projRel := b.nextRel
	b.nextRel++
	var cols []plan.ProjCol
	var names []string
	for i, it := range s.Items {
		name := it.Alias
		if fc, ok := it.E.(*FuncCall); ok {
			spec := plan.AggSpec{Out: expr.ColID{Rel: aggRel, Ord: len(groups) + len(aggs)}}
			switch fc.Name {
			case "COUNT":
				spec.Kind = plan.AggCount
			case "SUM":
				spec.Kind = plan.AggSum
			case "AVG":
				spec.Kind = plan.AggAvg
			case "MIN":
				spec.Kind = plan.AggMin
			case "MAX":
				spec.Kind = plan.AggMax
			default:
				return nil, nil, fmt.Errorf("sql: unknown aggregate %q", fc.Name)
			}
			if !fc.Star {
				arg, err := b.bindExpr(sc, fc.Arg)
				if err != nil {
					return nil, nil, err
				}
				spec.Arg = arg
			}
			if name == "" {
				name = fmt.Sprintf("%s_%d", plan.AggKind(spec.Kind).String(), i+1)
			}
			spec.Name = name
			aggs = append(aggs, spec)
			cols = append(cols, plan.ProjCol{
				E: expr.NewCol(spec.Out, name), Name: name, Out: expr.ColID{Rel: projRel, Ord: i},
			})
			names = append(names, name)
			continue
		}
		e, err := b.bindExpr(sc, it.E)
		if err != nil {
			return nil, nil, err
		}
		out, ok := groupOut[e.String()]
		if !ok {
			return nil, nil, fmt.Errorf("sql: %s must appear in GROUP BY", e)
		}
		if name == "" {
			name = outputName(it, e)
		}
		cols = append(cols, plan.ProjCol{E: expr.NewCol(out, name), Name: name, Out: expr.ColID{Rel: projRel, Ord: i}})
		names = append(names, name)
	}
	gb := &logical.GroupBy{Groups: groups, Aggs: aggs, Child: tree}
	return &logical.Project{Cols: cols, Child: gb}, names, nil
}

func (b *binder) bindUpdate(s *UpdateStmt) (logical.Node, error) {
	sc := &scope{}
	// FROM tables first (they form the build side), then the target.
	if err := b.addTables(sc, s.From); err != nil {
		return nil, err
	}
	if err := b.addTables(sc, []TableRef{s.Table}); err != nil {
		return nil, err
	}
	target := sc.rels[len(sc.rels)-1]

	var conjuncts []expr.Expr
	for _, c := range splitAnd(s.Where) {
		if in, ok := c.(*InExpr); ok && in.Sub != nil {
			return nil, fmt.Errorf("sql: IN subqueries in UPDATE are not supported")
		}
		e, err := b.bindExpr(sc, c)
		if err != nil {
			return nil, err
		}
		conjuncts = append(conjuncts, e)
	}

	var sets []plan.SetClause
	for _, item := range s.Sets {
		ord, ok := target.tab.ColOrd(item.Col)
		if !ok {
			return nil, fmt.Errorf("sql: table %q has no column %q", target.tab.Name, item.Col)
		}
		e, err := b.bindExpr(sc, item.E)
		if err != nil {
			return nil, err
		}
		sets = append(sets, plan.SetClause{Ord: ord, Value: e})
	}

	child, err := b.buildDMLChild(sc, len(s.From) > 0, target, conjuncts)
	if err != nil {
		return nil, err
	}
	return &logical.Update{Table: target.tab, Rel: target.rel, Sets: sets, Child: child}, nil
}

func (b *binder) bindDelete(s *DeleteStmt) (logical.Node, error) {
	sc := &scope{}
	if err := b.addTables(sc, s.Using); err != nil {
		return nil, err
	}
	if err := b.addTables(sc, []TableRef{s.Table}); err != nil {
		return nil, err
	}
	target := sc.rels[len(sc.rels)-1]

	var conjuncts []expr.Expr
	for _, c := range splitAnd(s.Where) {
		if in, ok := c.(*InExpr); ok && in.Sub != nil {
			return nil, fmt.Errorf("sql: IN subqueries in DELETE are not supported")
		}
		e, err := b.bindExpr(sc, c)
		if err != nil {
			return nil, err
		}
		conjuncts = append(conjuncts, e)
	}
	child, err := b.buildDMLChild(sc, len(s.Using) > 0, target, conjuncts)
	if err != nil {
		return nil, err
	}
	return &logical.Delete{Table: target.tab, Rel: target.rel, Child: child}, nil
}

// buildDMLChild constructs a DML statement's row source: the target alone
// under its predicates, or the source tables joined to the target, which is
// the probe side so its rows keep their storage identity.
func (b *binder) buildDMLChild(sc *scope, hasSources bool, target relRef, conjuncts []expr.Expr) (logical.Node, error) {
	if !hasSources {
		var targetOnly logical.Node = &logical.Get{Table: target.tab, Rel: target.rel, Alias: target.alias}
		if p := expr.Conj(conjuncts...); p != nil {
			targetOnly = &logical.Select{Pred: p, Child: targetOnly}
		}
		return targetOnly, nil
	}
	fromScope := &scope{rels: sc.rels[:len(sc.rels)-1]}
	var fromPreds, joinPreds, targetPreds []expr.Expr
	for _, c := range conjuncts {
		usesTarget, usesFrom := false, false
		for id := range expr.ColsUsed(c) {
			if id.Rel == target.rel {
				usesTarget = true
			} else {
				usesFrom = true
			}
		}
		switch {
		case usesTarget && usesFrom:
			joinPreds = append(joinPreds, c)
		case usesTarget:
			targetPreds = append(targetPreds, c)
		default:
			fromPreds = append(fromPreds, c)
		}
	}
	buildTree, rest, err := b.buildJoinTree(fromScope, nil, fromPreds)
	if err != nil {
		return nil, err
	}
	if rest != nil {
		buildTree = &logical.Select{Pred: rest, Child: buildTree}
	}
	var probe logical.Node = &logical.Get{Table: target.tab, Rel: target.rel, Alias: target.alias}
	if p := expr.Conj(targetPreds...); p != nil {
		probe = &logical.Select{Pred: p, Child: probe}
	}
	return &logical.Join{
		Type:  plan.InnerJoin,
		Pred:  expr.Conj(joinPreds...),
		Left:  buildTree,
		Right: probe,
	}, nil
}

// outputName picks a select item's output column name: the explicit alias,
// a bare column's base name, or the expression's rendering.
func outputName(it SelectItem, bound expr.Expr) string {
	if it.Alias != "" {
		return it.Alias
	}
	if id, ok := it.E.(*Ident); ok {
		return id.Name
	}
	return bound.String()
}

// resolveOrderBy maps ORDER BY items to output-column positions: a 1-based
// integer literal ordinal, or the name/alias of an output column.
func resolveOrderBy(items []OrderItem, cols []string) ([]plan.SortKey, error) {
	var keys []plan.SortKey
	for _, item := range items {
		switch x := item.E.(type) {
		case *Lit:
			if x.Val.Kind() != types.KindInt {
				return nil, fmt.Errorf("sql: ORDER BY literal must be an integer ordinal")
			}
			ord := x.Val.Int()
			if ord < 1 || ord > int64(len(cols)) {
				return nil, fmt.Errorf("sql: ORDER BY ordinal %d out of range 1..%d", ord, len(cols))
			}
			keys = append(keys, plan.SortKey{Pos: int(ord - 1), Desc: item.Desc})
		case *Ident:
			if x.Qual != "" {
				return nil, fmt.Errorf("sql: ORDER BY must reference an output column name or ordinal")
			}
			pos := -1
			for i, name := range cols {
				if name == x.Name {
					pos = i
					break
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("sql: ORDER BY column %q is not in the output", x.Name)
			}
			keys = append(keys, plan.SortKey{Pos: pos, Desc: item.Desc})
		default:
			return nil, fmt.Errorf("sql: ORDER BY supports output columns and ordinals only")
		}
	}
	return keys, nil
}

// splitAnd flattens the AST's AND chain.
func splitAnd(n Node) []Node {
	if n == nil {
		return nil
	}
	if b, ok := n.(*BinOp); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Node{n}
}

// bindExpr lowers one scalar AST node.
func (b *binder) bindExpr(sc *scope, n Node) (expr.Expr, error) {
	switch x := n.(type) {
	case *Ident:
		r, ord, err := sc.lookup(x.Qual, x.Name)
		if err != nil {
			return nil, err
		}
		return expr.NewCol(expr.ColID{Rel: r.rel, Ord: ord}, r.alias+"."+x.Name), nil
	case *Lit:
		return expr.NewConst(x.Val), nil
	case *ParamRef:
		if x.Idx+1 > b.numParams {
			b.numParams = x.Idx + 1
		}
		return &expr.Param{Idx: x.Idx}, nil
	case *BinOp:
		l, err := b.bindExpr(sc, x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(sc, x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "AND":
			return expr.Conj(l, r), nil
		case "OR":
			return expr.Disj(l, r), nil
		case "=", "<>", "<", "<=", ">", ">=":
			l, r = b.coercePair(l, r)
			return expr.NewCmp(cmpOp(x.Op), l, r), nil
		case "+", "-", "*", "/", "%":
			return &expr.Arith{Op: arithOp(x.Op), L: l, R: r}, nil
		}
		return nil, fmt.Errorf("sql: unknown operator %q", x.Op)
	case *NotExpr:
		arg, err := b.bindExpr(sc, x.Arg)
		if err != nil {
			return nil, err
		}
		return &expr.Not{Arg: arg}, nil
	case *BetweenExpr:
		e, err := b.bindExpr(sc, x.E)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(sc, x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(sc, x.Hi)
		if err != nil {
			return nil, err
		}
		_, lo = b.coercePair(e, lo)
		_, hi = b.coercePair(e, hi)
		return expr.Between(e, lo, hi), nil
	case *InExpr:
		if x.Sub != nil {
			return nil, fmt.Errorf("sql: IN subquery allowed only as a top-level WHERE conjunct")
		}
		e, err := b.bindExpr(sc, x.E)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(x.List))
		for i, item := range x.List {
			le, err := b.bindExpr(sc, item)
			if err != nil {
				return nil, err
			}
			_, le = b.coercePair(e, le)
			list[i] = le
		}
		return &expr.InList{Arg: e, List: list}, nil
	case *IsNullExpr:
		e, err := b.bindExpr(sc, x.E)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{Arg: e, Negate: x.Negate}, nil
	case *FuncCall:
		return nil, fmt.Errorf("sql: aggregate %s not allowed here", x.Name)
	}
	return nil, fmt.Errorf("sql: cannot bind %T", n)
}

func cmpOp(op string) expr.CmpOp {
	switch op {
	case "=":
		return expr.EQ
	case "<>":
		return expr.NE
	case "<":
		return expr.LT
	case "<=":
		return expr.LE
	case ">":
		return expr.GT
	}
	return expr.GE
}

func arithOp(op string) expr.ArithOp {
	switch op {
	case "+":
		return expr.Add
	case "-":
		return expr.Sub
	case "*":
		return expr.Mul
	case "/":
		return expr.Div
	}
	return expr.Mod
}

// coercePair converts a string literal to a date when compared with a
// date-kinded expression, so `date BETWEEN '2013-10-01' AND ...` works as
// it does in SQL.
func (b *binder) coercePair(l, r expr.Expr) (expr.Expr, expr.Expr) {
	lk, rk := b.kindOf(l), b.kindOf(r)
	if lk == types.KindDate && rk == types.KindString {
		if c, ok := r.(*expr.Const); ok {
			if d, err := types.ParseDate(c.Val.Str()); err == nil {
				return l, expr.NewConst(d)
			}
		}
	}
	if rk == types.KindDate && lk == types.KindString {
		if c, ok := l.(*expr.Const); ok {
			if d, err := types.ParseDate(c.Val.Str()); err == nil {
				return expr.NewConst(d), r
			}
		}
	}
	return l, r
}

// kindOf infers a coarse type for coercion decisions. Column kinds come
// from the catalog via the binder's reverse map; since layouts carry no
// types at this point, we track them on the expression itself.
func (b *binder) kindOf(e expr.Expr) types.Kind {
	switch x := e.(type) {
	case *expr.Const:
		return x.Val.Kind()
	case *expr.Col:
		if k, ok := b.colKinds[x.ID]; ok {
			return k
		}
		return types.KindNull
	case *expr.Arith:
		return types.KindFloat
	}
	return types.KindNull
}

// BindInsert resolves an INSERT statement to concrete rows: expressions
// must be constant (literals, parameters, arithmetic over them), string
// literals coerce to dates for date columns, and an explicit column list
// reorders values with NULLs for the unnamed columns.
func BindInsert(cat *catalog.Catalog, s *InsertStmt, params []types.Datum) (*catalog.Table, []types.Row, error) {
	tab, ok := cat.Table(s.Table)
	if !ok {
		return nil, nil, fmt.Errorf("sql: unknown table %q", s.Table)
	}
	// Map value positions to column ordinals.
	ords := make([]int, 0, len(tab.Cols))
	if len(s.Cols) == 0 {
		for i := range tab.Cols {
			ords = append(ords, i)
		}
	} else {
		seen := map[int]bool{}
		for _, name := range s.Cols {
			ord, ok := tab.ColOrd(name)
			if !ok {
				return nil, nil, fmt.Errorf("sql: table %q has no column %q", s.Table, name)
			}
			if seen[ord] {
				return nil, nil, fmt.Errorf("sql: column %q named twice", name)
			}
			seen[ord] = true
			ords = append(ords, ord)
		}
	}

	b := &binder{cat: cat, nextRel: 1}
	sc := &scope{}
	var rows []types.Row
	for ri, astRow := range s.Rows {
		if len(astRow) != len(ords) {
			return nil, nil, fmt.Errorf("sql: row %d has %d values, want %d", ri+1, len(astRow), len(ords))
		}
		row := make(types.Row, len(tab.Cols)) // unnamed columns default to NULL
		for vi, node := range astRow {
			e, err := b.bindExpr(sc, node)
			if err != nil {
				return nil, nil, err
			}
			v, ok, err := expr.EvalConst(e, params)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				return nil, nil, fmt.Errorf("sql: INSERT values must be constant expressions")
			}
			ord := ords[vi]
			if tab.Cols[ord].Kind == types.KindDate && v.Kind() == types.KindString {
				d, err := types.ParseDate(v.Str())
				if err != nil {
					return nil, nil, err
				}
				v = d
			}
			row[ord] = v
		}
		rows = append(rows, row)
	}
	return tab, rows, nil
}
