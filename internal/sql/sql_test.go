package sql

import (
	"strings"
	"testing"

	"partopt/internal/catalog"
	"partopt/internal/expr"
	"partopt/internal/logical"
	"partopt/internal/part"
	"partopt/internal/plan"
	"partopt/internal/types"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT avg(amount), 3.5, 'it''s' FROM orders WHERE a >= $2 -- comment\n AND b <> 1")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	joined := strings.Join(texts, " ")
	for _, want := range []string{"SELECT", "AVG", "amount", "3.5", "it's", "orders", "$-less"} {
		if want == "$-less" {
			continue
		}
		if !strings.Contains(joined, want) {
			t.Errorf("tokens missing %q: %v", want, texts)
		}
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Errorf("missing EOF token")
	}
	// Comment must be skipped; <> must survive.
	if !strings.Contains(joined, "<>") || strings.Contains(joined, "comment") {
		t.Errorf("comment handling wrong: %v", texts)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Errorf("unterminated string accepted")
	}
	if _, err := lex("a ; b"); err == nil {
		t.Errorf("unknown symbol accepted")
	}
	if _, err := lex("$x"); err == nil {
		t.Errorf("bad parameter accepted")
	}
}

func TestParseSelectShapes(t *testing.T) {
	stmts := []string{
		"SELECT * FROM orders",
		"SELECT avg(amount) FROM orders WHERE date BETWEEN '2013-10-01' AND '2013-12-31'",
		"SELECT a, count(*) AS n FROM r WHERE b IN (1, 2, 3) GROUP BY a",
		"SELECT r.a FROM r, s WHERE r.b = s.b AND s.a < 100",
		"SELECT a FROM r JOIN s ON r.b = s.b WHERE s.a IS NOT NULL",
		"SELECT a FROM r WHERE a IN (SELECT x FROM t WHERE y = 1)",
		"SELECT a FROM r WHERE NOT (a = 1 OR a = 2)",
		"SELECT a+1, -a, a*2 FROM r WHERE a % 2 = 0 AND a / 2 > 3",
		"SELECT a FROM r WHERE d = date '2013-01-02'",
		"SELECT a FROM r WHERE a NOT IN (1,2) AND b NOT BETWEEN 1 AND 2",
		"SELECT a FROM r WHERE a = $1 AND b = true OR c = false OR d IS NULL",
	}
	for _, s := range stmts {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
	}
}

func TestParseUpdate(t *testing.T) {
	stmt, err := Parse("UPDATE r SET b = s.b, a = a + 1 FROM s WHERE r.a = s.a")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u, ok := stmt.(*UpdateStmt)
	if !ok || len(u.Sets) != 2 || len(u.From) != 1 {
		t.Errorf("update parse wrong: %+v", u)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DELETE r",
		"SELECT FROM r",
		"SELECT a FROM",
		"SELECT a FROM r WHERE",
		"SELECT a FROM r GROUP a",
		"SELECT a FROM r extra garbage (",
		"SELECT count(* FROM r",
		"SELECT a FROM r WHERE a BETWEEN 1",
		"SELECT a FROM r WHERE a IN (",
		"UPDATE r SET",
		"SELECT a FROM r WHERE date 5",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	if _, err := cat.CreateTable("orders",
		[]catalog.Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "amount", Kind: types.KindFloat},
			{Name: "date", Kind: types.KindDate},
			{Name: "date_id", Kind: types.KindInt},
		},
		catalog.Hashed(0),
		part.RangeLevel(2, part.MonthlyBounds(2012, 1, 24, 1)...),
	); err != nil {
		t.Fatalf("create orders: %v", err)
	}
	if _, err := cat.CreateTable("date_dim",
		[]catalog.Column{
			{Name: "date_id", Kind: types.KindInt},
			{Name: "year", Kind: types.KindInt},
			{Name: "month", Kind: types.KindInt},
			{Name: "day", Kind: types.KindInt},
		},
		catalog.Hashed(0),
	); err != nil {
		t.Fatalf("create date_dim: %v", err)
	}
	return cat
}

// The paper's Figure 2 query binds to Project(GroupBy(Select(Get))), with
// the BETWEEN coerced to date constants.
func TestBindFig2Query(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := Parse("SELECT avg(amount) FROM orders WHERE date BETWEEN '2013-10-01' AND '2013-12-31'")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	bound, err := Bind(cat, stmt)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	proj, ok := bound.Root.(*logical.Project)
	if !ok {
		t.Fatalf("root = %T", bound.Root)
	}
	gb, ok := proj.Child.(*logical.GroupBy)
	if !ok || len(gb.Aggs) != 1 || gb.Aggs[0].Kind != plan.AggAvg {
		t.Fatalf("missing scalar avg: %s", logical.Explain(bound.Root))
	}
	sel, ok := gb.Child.(*logical.Select)
	if !ok {
		t.Fatalf("missing select: %s", logical.Explain(bound.Root))
	}
	// Date coercion: the predicate's constants must be dates, not strings.
	found := 0
	expr.Walk(sel.Pred, func(e expr.Expr) bool {
		if c, ok := e.(*expr.Const); ok && c.Val.Kind() == types.KindDate {
			found++
		}
		return true
	})
	if found != 2 {
		t.Errorf("date constants = %d, want 2 (coerced)", found)
	}
	if len(bound.Columns) != 1 {
		t.Errorf("columns = %v", bound.Columns)
	}
}

// The paper's Figure 4 query: IN subquery becomes a semi join with the
// dimension on the build side.
func TestBindFig4Query(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := Parse(`SELECT avg(amount) FROM orders WHERE date_id IN
		(SELECT date_id FROM date_dim WHERE year = 2013 AND month BETWEEN 10 AND 12)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	bound, err := Bind(cat, stmt)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	out := logical.Explain(bound.Root)
	proj := bound.Root.(*logical.Project)
	gb := proj.Child.(*logical.GroupBy)
	join, ok := gb.Child.(*logical.Join)
	if !ok || join.Type != plan.SemiJoin {
		t.Fatalf("expected semi join:\n%s", out)
	}
	// Build side: the subquery (date_dim select); probe: orders.
	if _, ok := join.Left.(*logical.Select); !ok {
		t.Errorf("build side = %T:\n%s", join.Left, out)
	}
	if g, ok := join.Right.(*logical.Get); !ok || g.Table.Name != "orders" {
		t.Errorf("probe side = %T:\n%s", join.Right, out)
	}
}

func TestBindJoinTreeAndPredicatePlacement(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := Parse("SELECT o.id FROM date_dim d, orders o WHERE d.date_id = o.date_id AND d.year = 2013 AND o.amount > 10")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	bound, err := Bind(cat, stmt)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	out := logical.Explain(bound.Root)
	proj := bound.Root.(*logical.Project)
	join, ok := proj.Child.(*logical.Join)
	if !ok {
		t.Fatalf("expected join below project:\n%s", out)
	}
	if join.Pred == nil || !strings.Contains(join.Pred.String(), "date_id") {
		t.Errorf("join predicate = %v", join.Pred)
	}
	// d.year pred above the date_dim Get; o.amount pred above orders Get.
	if _, ok := join.Left.(*logical.Select); !ok {
		t.Errorf("dimension-side select missing:\n%s", out)
	}
	if _, ok := join.Right.(*logical.Select); !ok {
		t.Errorf("fact-side select missing:\n%s", out)
	}
}

func TestBindUpdate(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := Parse("UPDATE orders SET amount = amount * 2 WHERE id = 5")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	bound, err := Bind(cat, stmt)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if !bound.IsUpdate {
		t.Errorf("IsUpdate = false")
	}
	u, ok := bound.Root.(*logical.Update)
	if !ok || len(u.Sets) != 1 || u.Sets[0].Ord != 1 {
		t.Fatalf("update shape wrong: %s", logical.Explain(bound.Root))
	}
	// UPDATE ... FROM.
	stmt, err = Parse("UPDATE orders SET amount = d.year FROM date_dim d WHERE orders.date_id = d.date_id AND d.month = 3")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	bound, err = Bind(cat, stmt)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	u = bound.Root.(*logical.Update)
	j, ok := u.Child.(*logical.Join)
	if !ok {
		t.Fatalf("update child = %T", u.Child)
	}
	if g, ok := j.Right.(*logical.Get); !ok || g.Table.Name != "orders" {
		t.Errorf("target must be the probe side: %s", logical.Explain(bound.Root))
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"SELECT * FROM ghost",
		"SELECT ghost FROM orders",
		"SELECT o.ghost FROM orders o",
		"SELECT date_id FROM orders, date_dim",                                 // ambiguous
		"SELECT amount FROM orders o, orders o",                                // duplicate alias
		"SELECT amount, count(*) FROM orders",                                  // non-grouped column
		"SELECT a FROM orders WHERE amount IN (SELECT id, amount FROM orders)", // two columns
		"UPDATE orders SET ghost = 1",
		"SELECT * FROM orders GROUP BY id",
	}
	for _, s := range bad {
		stmt, err := Parse(s)
		if err != nil {
			continue // parse errors also acceptable
		}
		if _, err := Bind(cat, stmt); err == nil {
			t.Errorf("Bind(%q) should fail", s)
		}
	}
}

func TestBindParamsCounted(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := Parse("SELECT amount FROM orders WHERE date_id = $2 AND id = $1")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	bound, err := Bind(cat, stmt)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if bound.NumParams != 2 {
		t.Errorf("NumParams = %d, want 2", bound.NumParams)
	}
}

func TestParseOrderLimitInsertDelete(t *testing.T) {
	good := []string{
		"SELECT a FROM r ORDER BY a",
		"SELECT a FROM r ORDER BY a DESC, 1 ASC LIMIT 10",
		"SELECT DISTINCT a FROM r",
		"DELETE FROM r",
		"DELETE FROM r WHERE a = 1",
		"DELETE FROM r USING s, t WHERE r.a = s.a AND s.b = t.b",
		"INSERT INTO r VALUES (1, 'x')",
		"INSERT INTO r (a, b) VALUES (1, 2), (3, 4)",
		"INSERT INTO r VALUES ($1, $2)",
	}
	for _, q := range good {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
	bad := []string{
		"SELECT a FROM r ORDER a",
		"SELECT a FROM r ORDER BY",
		"SELECT a FROM r LIMIT",
		"SELECT a FROM r LIMIT abc",
		"DELETE r",
		"DELETE FROM r USING",
		"INSERT r VALUES (1)",
		"INSERT INTO r",
		"INSERT INTO r VALUES 1",
		"INSERT INTO r VALUES (1",
		"INSERT INTO r (a VALUES (1)",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
	// Shapes.
	stmt, err := Parse("SELECT a, b FROM r ORDER BY b DESC LIMIT 7")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sel := stmt.(*SelectStmt)
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc || sel.Limit != 7 {
		t.Errorf("order/limit shape: %+v limit=%d", sel.OrderBy, sel.Limit)
	}
	stmt, err = Parse("DELETE FROM r USING s WHERE r.a = s.a")
	if err != nil {
		t.Fatalf("Parse delete: %v", err)
	}
	del := stmt.(*DeleteStmt)
	if del.Table.Name != "r" || len(del.Using) != 1 || del.Where == nil {
		t.Errorf("delete shape: %+v", del)
	}
	stmt, err = Parse("INSERT INTO r (a) VALUES (1), (2)")
	if err != nil {
		t.Fatalf("Parse insert: %v", err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "r" || len(ins.Cols) != 1 || len(ins.Rows) != 2 {
		t.Errorf("insert shape: %+v", ins)
	}
}

func TestBindOrderByResolution(t *testing.T) {
	cat := testCatalog(t)
	// Alias, bare column name, ordinal.
	for _, q := range []string{
		"SELECT amount AS amt FROM orders ORDER BY amt DESC",
		"SELECT amount FROM orders ORDER BY amount",
		"SELECT amount, id FROM orders ORDER BY 2, 1 DESC",
		"SELECT id, count(*) AS n FROM orders GROUP BY id ORDER BY n DESC LIMIT 5",
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		bound, err := Bind(cat, stmt)
		if err != nil {
			t.Errorf("Bind(%q): %v", q, err)
			continue
		}
		if len(bound.OrderBy) == 0 {
			t.Errorf("Bind(%q): no sort keys", q)
		}
	}
	// Errors.
	for _, q := range []string{
		"SELECT amount FROM orders ORDER BY ghost",
		"SELECT amount FROM orders ORDER BY 0",
		"SELECT amount FROM orders ORDER BY 9",
		"SELECT amount FROM orders ORDER BY o.amount",
		"SELECT amount FROM orders ORDER BY amount + 1",
		"SELECT amount FROM orders ORDER BY 'x'",
		"SELECT amount FROM orders WHERE id IN (SELECT id FROM orders ORDER BY 1)",
	} {
		stmt, err := Parse(q)
		if err != nil {
			continue
		}
		if _, err := Bind(cat, stmt); err == nil {
			t.Errorf("Bind(%q) should fail", q)
		}
	}
}

func TestBindInsertShapes(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := Parse("INSERT INTO orders (id, date, amount) VALUES (1, '2012-05-05', 2.5), ($1, '2013-01-01', $2)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tab, rows, err := BindInsert(cat, stmt.(*InsertStmt),
		[]types.Datum{types.NewInt(2), types.NewFloat(9)})
	if err != nil {
		t.Fatalf("BindInsert: %v", err)
	}
	if tab.Name != "orders" || len(rows) != 2 {
		t.Fatalf("shape: %s %d", tab.Name, len(rows))
	}
	if rows[0][2].Kind() != types.KindDate {
		t.Errorf("date not coerced: %v", rows[0][2])
	}
	if !rows[0][3].IsNull() {
		t.Errorf("unnamed column should be NULL")
	}
	if rows[1][0].Int() != 2 || rows[1][1].Float() != 9 {
		t.Errorf("params not bound: %v", rows[1])
	}
	// Errors.
	for _, q := range []string{
		"INSERT INTO ghost VALUES (1)",
		"INSERT INTO orders (ghost) VALUES (1)",
		"INSERT INTO orders (id, id) VALUES (1, 2)",
		"INSERT INTO orders (id) VALUES (1, 2)",
		"INSERT INTO orders (date) VALUES ('nonsense')",
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		if _, _, err := BindInsert(cat, stmt.(*InsertStmt), nil); err == nil {
			t.Errorf("BindInsert(%q) should fail", q)
		}
	}
}

func TestBindDeleteShapes(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := Parse("DELETE FROM orders USING date_dim d WHERE orders.date_id = d.date_id AND d.year = 2013")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	bound, err := Bind(cat, stmt)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if !bound.IsUpdate || bound.Columns[0] != "deleted" {
		t.Errorf("bound shape: %+v", bound)
	}
	del, ok := bound.Root.(*logical.Delete)
	if !ok {
		t.Fatalf("root = %T", bound.Root)
	}
	if _, ok := del.Child.(*logical.Join); !ok {
		t.Errorf("delete child = %T, want join", del.Child)
	}
	// IN subquery rejected in DELETE.
	stmt, err = Parse("DELETE FROM orders WHERE date_id IN (SELECT date_id FROM date_dim)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := Bind(cat, stmt); err == nil {
		t.Errorf("IN subquery in DELETE accepted")
	}
}
