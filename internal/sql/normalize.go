package sql

import (
	"strconv"
	"strings"

	"partopt/internal/types"
)

// Query normalization for plan caching. Two SELECTs that differ only in the
// run-time-constant literals of their WHERE clauses — point lookups over
// different keys, range scans over different windows — compile to the same
// parameterized plan under the Orca optimizer, because its
// PartitionSelector/DynamicScan machinery resolves parameter values at
// execution time (the paper's plan-reusability property). NormalizeSelect
// rewrites such literals to trailing $n parameters and renders a canonical
// text that serves as the cache fingerprint.
//
// Lifting rules (documented in DESIGN.md §11):
//
//   - Only WHERE-clause literals are lifted, including the WHERE clause of
//     an IN (SELECT ...) subquery. SELECT items, GROUP BY and ORDER BY
//     expressions keep their literals: they shape output column names,
//     grouping structure and sort ordinals, which are part of the plan.
//   - Only int, float and date literals are lifted. String literals stay
//     inline because the binder coerces string constants (not parameters)
//     to dates when compared against date columns; lifting them would
//     silently change comparison semantics. Bools and NULL are structural.
//   - LIMIT counts are not expressions in this grammar and are never
//     touched; integer ORDER BY ordinals are likewise structural.
//
// The rewrite never mutates its input: shared statements stay usable for
// optimizers (the legacy planner) that prune partitions at plan time and
// therefore must see literal values.

// Normalized is a SELECT rewritten for plan caching.
type Normalized struct {
	// Stmt is the rewritten statement: lifted literals replaced by
	// parameter references numbered after the statement's explicit ones.
	Stmt *SelectStmt
	// Text is the canonical rendering of Stmt — the cache fingerprint.
	Text string
	// Extra holds the lifted literal values, in parameter order; an
	// execution binds them after the caller's explicit arguments.
	Extra []types.Datum
	// NumExplicit is the number of parameters the caller must supply
	// (the highest explicit $n in the original text).
	NumExplicit int
}

// NormalizeSelect lifts cacheable WHERE-clause literals out of s into
// trailing parameters and returns the rewritten statement with its
// canonical text. s itself is not modified.
func NormalizeSelect(s *SelectStmt) *Normalized {
	base := maxParamCount(s)
	l := &lifter{next: base}
	out := *s
	if s.Where != nil {
		out.Where = l.rewrite(s.Where)
	}
	return &Normalized{
		Stmt:        &out,
		Text:        FormatSelect(&out),
		Extra:       l.extra,
		NumExplicit: base,
	}
}

// liftable reports whether a literal of this kind may become a parameter
// without changing binding semantics.
func liftable(k types.Kind) bool {
	switch k {
	case types.KindInt, types.KindFloat, types.KindDate:
		return true
	}
	return false
}

type lifter struct {
	next  int
	extra []types.Datum
}

func (l *lifter) lift(v types.Datum) Node {
	p := &ParamRef{Idx: l.next}
	l.next++
	l.extra = append(l.extra, v)
	return p
}

// rewrite returns a copy of n with liftable literals replaced by parameter
// references. Unchanged leaves (idents, params, unliftable literals) are
// shared with the input.
func (l *lifter) rewrite(n Node) Node {
	switch x := n.(type) {
	case *Lit:
		if liftable(x.Val.Kind()) {
			return l.lift(x.Val)
		}
		return x
	case *BinOp:
		// The parser renders a unary minus as (0 - v); fold the pair into
		// one negated parameter so `k = -5` and `k = -7` share a plan.
		if x.Op == "-" {
			if z, ok := x.L.(*Lit); ok && z.Val.Kind() == types.KindInt && z.Val.Int() == 0 {
				if r, ok := x.R.(*Lit); ok {
					switch r.Val.Kind() {
					case types.KindInt:
						return l.lift(types.NewInt(-r.Val.Int()))
					case types.KindFloat:
						return l.lift(types.NewFloat(-r.Val.Float()))
					}
				}
			}
		}
		return &BinOp{Op: x.Op, L: l.rewrite(x.L), R: l.rewrite(x.R)}
	case *NotExpr:
		return &NotExpr{Arg: l.rewrite(x.Arg)}
	case *BetweenExpr:
		return &BetweenExpr{E: l.rewrite(x.E), Lo: l.rewrite(x.Lo), Hi: l.rewrite(x.Hi)}
	case *InExpr:
		if x.Sub != nil {
			sub := *x.Sub
			if sub.Where != nil {
				sub.Where = l.rewrite(sub.Where)
			}
			return &InExpr{E: l.rewrite(x.E), Sub: &sub}
		}
		list := make([]Node, len(x.List))
		for i, item := range x.List {
			list[i] = l.rewrite(item)
		}
		return &InExpr{E: l.rewrite(x.E), List: list}
	case *IsNullExpr:
		return &IsNullExpr{E: l.rewrite(x.E), Negate: x.Negate}
	default:
		// Ident, ParamRef, FuncCall: nothing liftable below (aggregates are
		// rejected in WHERE at bind time anyway).
		return n
	}
}

// maxParamCount returns the number of explicit parameters a statement
// declares: the highest $n across every expression position.
func maxParamCount(s *SelectStmt) int {
	max := 0
	var walk func(n Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case nil:
			return
		case *ParamRef:
			if x.Idx+1 > max {
				max = x.Idx + 1
			}
		case *BinOp:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.Arg)
		case *BetweenExpr:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *InExpr:
			walk(x.E)
			for _, item := range x.List {
				walk(item)
			}
			if x.Sub != nil {
				walkSelect(x.Sub, walk)
			}
		case *IsNullExpr:
			walk(x.E)
		case *FuncCall:
			walk(x.Arg)
		}
	}
	walkSelect(s, walk)
	return max
}

func walkSelect(s *SelectStmt, walk func(Node)) {
	for _, it := range s.Items {
		walk(it.E)
	}
	for _, ref := range s.From {
		walk(ref.On)
	}
	walk(s.Where)
	for _, g := range s.GroupBy {
		walk(g)
	}
	for _, o := range s.OrderBy {
		walk(o.E)
	}
}

// FormatSelect renders a SELECT deterministically: uppercase keywords,
// single spaces, fully parenthesized expressions, $n parameters 1-based.
// Two parses produce the same text iff their trees are identical, which is
// what makes the rendering usable as a cache fingerprint.
func FormatSelect(s *SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Star {
		b.WriteByte('*')
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			writeNode(&b, it.E)
			if it.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(it.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, ref := range s.From {
		if i > 0 {
			switch ref.Join {
			case JoinLeft:
				b.WriteString(" LEFT OUTER JOIN ")
			case JoinRight:
				b.WriteString(" RIGHT OUTER JOIN ")
			default:
				b.WriteString(", ")
			}
		}
		b.WriteString(ref.Name)
		if ref.Alias != "" && ref.Alias != ref.Name {
			b.WriteString(" AS ")
			b.WriteString(ref.Alias)
		}
		if ref.On != nil {
			b.WriteString(" ON ")
			writeNode(&b, ref.On)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		writeNode(&b, s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			writeNode(&b, g)
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			writeNode(&b, o.E)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.FormatInt(s.Limit, 10))
	}
	return b.String()
}

func writeNode(b *strings.Builder, n Node) {
	switch x := n.(type) {
	case nil:
	case *Ident:
		if x.Qual != "" {
			b.WriteString(x.Qual)
			b.WriteByte('.')
		}
		b.WriteString(x.Name)
	case *Lit:
		writeLit(b, x.Val)
	case *ParamRef:
		b.WriteByte('$')
		b.WriteString(strconv.Itoa(x.Idx + 1))
	case *BinOp:
		b.WriteByte('(')
		writeNode(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		writeNode(b, x.R)
		b.WriteByte(')')
	case *NotExpr:
		b.WriteString("(NOT ")
		writeNode(b, x.Arg)
		b.WriteByte(')')
	case *BetweenExpr:
		b.WriteByte('(')
		writeNode(b, x.E)
		b.WriteString(" BETWEEN ")
		writeNode(b, x.Lo)
		b.WriteString(" AND ")
		writeNode(b, x.Hi)
		b.WriteByte(')')
	case *InExpr:
		b.WriteByte('(')
		writeNode(b, x.E)
		b.WriteString(" IN (")
		if x.Sub != nil {
			b.WriteString(FormatSelect(x.Sub))
		} else {
			for i, item := range x.List {
				if i > 0 {
					b.WriteString(", ")
				}
				writeNode(b, item)
			}
		}
		b.WriteString("))")
	case *IsNullExpr:
		b.WriteByte('(')
		writeNode(b, x.E)
		if x.Negate {
			b.WriteString(" IS NOT NULL")
		} else {
			b.WriteString(" IS NULL")
		}
		b.WriteByte(')')
	case *FuncCall:
		b.WriteString(x.Name)
		b.WriteByte('(')
		if x.Star {
			b.WriteByte('*')
		} else {
			writeNode(b, x.Arg)
		}
		b.WriteByte(')')
	}
}

func writeLit(b *strings.Builder, v types.Datum) {
	switch v.Kind() {
	case types.KindInt:
		b.WriteString(strconv.FormatInt(v.Int(), 10))
	case types.KindFloat:
		b.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case types.KindString:
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(v.Str(), "'", "''"))
		b.WriteByte('\'')
	case types.KindBool:
		if v.Bool() {
			b.WriteString("TRUE")
		} else {
			b.WriteString("FALSE")
		}
	case types.KindDate:
		b.WriteString("date '")
		b.WriteString(v.String())
		b.WriteByte('\'')
	default:
		b.WriteString("NULL")
	}
}
