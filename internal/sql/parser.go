package sql

import (
	"fmt"
	"strconv"

	"partopt/internal/types"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var stmt Statement
	switch {
	case p.peekKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.peekKeyword("UPDATE"):
		stmt, err = p.parseUpdate()
	case p.peekKeyword("DELETE"):
		stmt, err = p.parseDelete()
	case p.peekKeyword("INSERT"):
		stmt, err = p.parseInsert()
	default:
		return nil, fmt.Errorf("sql: expected SELECT, UPDATE or DELETE, got %q", p.cur().text)
	}
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) peekSymbol(s string) bool {
	t := p.cur()
	return t.kind == tokSymbol && t.text == s
}

func (p *parser) acceptSymbol(s string) bool {
	if p.peekSymbol(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("sql: expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// parseSelect parses a full SELECT statement.
func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	p.acceptKeyword("DISTINCT") // accepted and ignored under set semantics of aggregates
	if p.acceptSymbol("*") {
		stmt.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{E: e}
			if p.acceptKeyword("AS") {
				name, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = name
			} else if p.cur().kind == tokIdent {
				item.Alias = p.next().text
			}
			stmt.Items = append(stmt.Items, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var onPreds []Node
	first, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = append(stmt.From, first)
	for {
		if p.acceptSymbol(",") {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, ref)
			continue
		}
		if p.peekKeyword("INNER") || p.peekKeyword("JOIN") || p.peekKeyword("LEFT") || p.peekKeyword("RIGHT") {
			kind := JoinInner
			switch {
			case p.acceptKeyword("LEFT"):
				kind = JoinLeft
				p.acceptKeyword("OUTER")
			case p.acceptKeyword("RIGHT"):
				kind = JoinRight
				p.acceptKeyword("OUTER")
			default:
				p.acceptKeyword("INNER")
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			pred, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if kind == JoinInner {
				// Inner ON conjuncts are WHERE conjuncts; folding them keeps
				// plan-cache fingerprints identical across the two spellings.
				onPreds = append(onPreds, pred)
			} else {
				// Outer ON predicates must stay on the join: applied as a
				// WHERE filter they would discard the NULL-extended rows the
				// join exists to produce.
				ref.Join = kind
				ref.On = pred
			}
			stmt.From = append(stmt.From, ref)
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	// Fold ON predicates into WHERE.
	for _, pred := range onPreds {
		if stmt.Where == nil {
			stmt.Where = pred
		} else {
			stmt.Where = &BinOp{Op: "AND", L: stmt.Where, R: pred}
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.kind != tokInt {
			return nil, fmt.Errorf("sql: LIMIT needs an integer, got %q", t.text)
		}
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name, Alias: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.cur().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// parseUpdate parses UPDATE t SET ... [FROM ...] [WHERE ...].
func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	target, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: target}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetItem{Col: col, E: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, ref)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

// parseInsert parses INSERT INTO t [(cols)] VALUES (...), (...).
func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.acceptSymbol("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Node
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}

// parseDelete parses DELETE FROM t [USING ...] [WHERE ...].
func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	target, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: target}
	if p.acceptKeyword("USING") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.Using = append(stmt.Using, ref)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

// Expression grammar: OR < AND < NOT < comparison/IN/BETWEEN/IS < additive
// < multiplicative < unary < primary.

func (p *parser) parseExpr() (Node, error) { return p.parseOr() }

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.acceptKeyword("NOT") {
		arg, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Arg: arg}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Node, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	negate := false
	if p.peekKeyword("NOT") {
		// Lookahead for NOT IN / NOT BETWEEN.
		save := p.pos
		p.pos++
		if p.peekKeyword("IN") || p.peekKeyword("BETWEEN") {
			negate = true
		} else {
			p.pos = save
			return l, nil
		}
	}
	switch {
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var out Node = &BetweenExpr{E: l, Lo: lo, Hi: hi}
		if negate {
			out = &NotExpr{Arg: out}
		}
		return out, nil
	case p.acceptKeyword("IN"):
		in, err := p.parseInTail(l)
		if err != nil {
			return nil, err
		}
		var out Node = in
		if negate {
			out = &NotExpr{Arg: out}
		}
		return out, nil
	case p.acceptKeyword("IS"):
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Negate: neg}, nil
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.acceptSymbol(op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseInTail(l Node) (*InExpr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if p.peekKeyword("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, Sub: sub}, nil
	}
	var list []Node
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &InExpr{E: l, List: list}, nil
}

func (p *parser) parseAdditive() (Node, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "+", L: l, R: r}
		case p.acceptSymbol("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "*", L: l, R: r}
		case p.acceptSymbol("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "/", L: l, R: r}
		case p.acceptSymbol("%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Node, error) {
	if p.acceptSymbol("-") {
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: "-", L: &Lit{Val: types.NewInt(0)}, R: arg}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.pos++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad integer %q", t.text)
		}
		return &Lit{Val: types.NewInt(v)}, nil
	case tokFloat:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad float %q", t.text)
		}
		return &Lit{Val: types.NewFloat(v)}, nil
	case tokString:
		p.pos++
		return &Lit{Val: types.NewString(t.text)}, nil
	case tokParam:
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sql: bad parameter $%s", t.text)
		}
		return &ParamRef{Idx: n - 1}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return &Lit{Val: types.Null}, nil
		case "TRUE":
			p.pos++
			return &Lit{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.pos++
			return &Lit{Val: types.NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.pos++
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			if t.text == "COUNT" && p.acceptSymbol("*") {
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &FuncCall{Name: "COUNT", Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: t.text, Arg: arg}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %q in expression", t.text)
	case tokIdent:
		p.pos++
		// `date '2013-01-02'` is a date literal; a bare `date` is a
		// perfectly good column name (the paper's Fig. 1 schema uses one).
		if t.text == "date" && p.cur().kind == tokString {
			s := p.next()
			d, err := types.ParseDate(s.text)
			if err != nil {
				return nil, err
			}
			return &Lit{Val: d}, nil
		}
		if p.acceptSymbol(".") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &Ident{Qual: t.text, Name: name}, nil
		}
		return &Ident{Name: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q in expression", t.text)
}
