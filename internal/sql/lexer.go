// Package sql implements the SQL front end: a hand-written lexer and
// recursive-descent parser for the dialect the paper's queries use
// (SELECT/JOIN/WHERE/GROUP BY with aggregates, IN lists and subqueries,
// BETWEEN, prepared-statement parameters, and UPDATE ... FROM), plus a
// binder that resolves names against the catalog and lowers the AST to the
// logical algebra.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokParam  // $1, $2, ...
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers lower-cased
	pos  int    // byte offset, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "BETWEEN": true,
	"IS": true, "NULL": true, "AS": true, "JOIN": true, "ON": true,
	"INNER": true, "UPDATE": true, "SET": true, "TRUE": true, "FALSE": true,
	"LEFT": true, "RIGHT": true, "OUTER": true,
	"DELETE": true, "USING": true, "ORDER": true, "LIMIT": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"ASC": true, "DESC": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DISTINCT": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes a statement.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c == '$':
			l.pos++
			d := l.lexWhile(unicode.IsDigit)
			if d == "" {
				return nil, fmt.Errorf("sql: bad parameter at offset %d", start)
			}
			l.toks = append(l.toks, token{kind: tokParam, text: d, pos: start})
		case unicode.IsDigit(rune(c)):
			num, isFloat := l.lexNumber()
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			l.toks = append(l.toks, token{kind: kind, text: num, pos: start})
		case unicode.IsLetter(rune(c)) || c == '_':
			word := l.lexWhile(func(r rune) bool {
				return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
			})
			up := strings.ToUpper(word)
			if keywords[up] {
				l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
			}
		default:
			sym, err := l.lexSymbol()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func (l *lexer) lexWhile(pred func(rune) bool) string {
	start := l.pos
	for l.pos < len(l.src) && pred(rune(l.src[l.pos])) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexString() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated string starting at offset %d", start)
}

func (l *lexer) lexNumber() (string, bool) {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !isFloat && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
			isFloat = true
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos], isFloat
}

var symbols = []string{"<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", "+", "-", "/", "%", "."}

func (l *lexer) lexSymbol() (string, error) {
	rest := l.src[l.pos:]
	for _, s := range symbols {
		if strings.HasPrefix(rest, s) {
			l.pos += len(s)
			if s == "!=" {
				s = "<>"
			}
			return s, nil
		}
	}
	return "", fmt.Errorf("sql: unexpected character %q at offset %d", l.src[l.pos], l.pos)
}
