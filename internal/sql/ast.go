package sql

import "partopt/internal/types"

// The AST mirrors the surface syntax; names are unresolved until binding.

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is SELECT ... FROM ... [WHERE ...] [GROUP BY ...]
// [ORDER BY ...] [LIMIT n].
type SelectStmt struct {
	Star    bool
	Items   []SelectItem
	From    []TableRef
	Where   Node
	GroupBy []Node
	OrderBy []OrderItem
	Limit   int64 // -1 when absent
}

// OrderItem is one ORDER BY entry: an output-column ordinal (1-based
// integer literal) or an output alias.
type OrderItem struct {
	E    Node
	Desc bool
}

func (*SelectStmt) stmt() {}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	E     Node
	Alias string
}

// JoinKind says how a FROM entry attaches to the entries before it.
type JoinKind uint8

// Join kinds. Comma-separated refs (and the first FROM entry) use
// JoinNone; INNER JOIN parses to JoinInner with its ON conjuncts folded
// into WHERE (equivalent for inner joins, and it keeps plan-cache
// fingerprints stable); LEFT/RIGHT OUTER JOIN keep their ON predicate
// attached because folding it into WHERE would change the join's result.
const (
	JoinNone JoinKind = iota
	JoinInner
	JoinLeft
	JoinRight
)

// TableRef is one FROM entry.
type TableRef struct {
	Name  string
	Alias string
	Join  JoinKind
	On    Node // outer joins only; inner-join ON folds into WHERE
}

// UpdateStmt is UPDATE t SET col = e, ... [FROM t2 ...] [WHERE ...].
type UpdateStmt struct {
	Table TableRef
	Sets  []SetItem
	From  []TableRef
	Where Node
}

func (*UpdateStmt) stmt() {}

// SetItem is one SET assignment.
type SetItem struct {
	Col string
	E   Node
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table string
	Cols  []string // empty: positional
	Rows  [][]Node
}

func (*InsertStmt) stmt() {}

// DeleteStmt is DELETE FROM t [USING t2 ...] [WHERE ...].
type DeleteStmt struct {
	Table TableRef
	Using []TableRef
	Where Node
}

func (*DeleteStmt) stmt() {}

// Node is an unbound scalar expression.
type Node interface{ node() }

// Ident is a possibly-qualified column reference.
type Ident struct {
	Qual string // table or alias; empty when unqualified
	Name string
}

// Lit is a literal value.
type Lit struct {
	Val types.Datum
}

// ParamRef is a $n placeholder (0-based index).
type ParamRef struct {
	Idx int
}

// BinOp is a binary operation: comparisons (=, <>, <, <=, >, >=),
// arithmetic (+, -, *, /, %), and the connectives AND/OR.
type BinOp struct {
	Op   string
	L, R Node
}

// NotExpr is logical negation.
type NotExpr struct {
	Arg Node
}

// BetweenExpr is e BETWEEN lo AND hi.
type BetweenExpr struct {
	E, Lo, Hi Node
}

// InExpr is e IN (list) or e IN (subquery); exactly one of List/Sub is set.
type InExpr struct {
	E    Node
	List []Node
	Sub  *SelectStmt
}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E      Node
	Negate bool
}

// FuncCall is an aggregate invocation.
type FuncCall struct {
	Name string // COUNT, SUM, AVG, MIN, MAX (upper case)
	Star bool   // COUNT(*)
	Arg  Node
}

func (*Ident) node()       {}
func (*Lit) node()         {}
func (*ParamRef) node()    {}
func (*BinOp) node()       {}
func (*NotExpr) node()     {}
func (*BetweenExpr) node() {}
func (*InExpr) node()      {}
func (*IsNullExpr) node()  {}
func (*FuncCall) node()    {}
