// Package logical defines the logical relational algebra both optimizers
// consume: base-table access (Get), Select, inner/semi Join, Project,
// GroupBy and Update. The SQL binder produces these trees; internal/orca
// and internal/legacy turn them into physical plans.
package logical

import (
	"fmt"
	"strings"

	"partopt/internal/catalog"
	"partopt/internal/expr"
	"partopt/internal/plan"
)

// Node is a logical operator.
type Node interface {
	Children() []Node
	String() string
	// Rels returns the relation instance ids available in the subtree's
	// output.
	Rels() map[int]bool
}

func union(ms ...map[int]bool) map[int]bool {
	out := map[int]bool{}
	for _, m := range ms {
		for k := range m {
			out[k] = true
		}
	}
	return out
}

// Get is a base-table access with a query-scoped relation instance id. For
// partitioned tables the id doubles as the partScanId.
type Get struct {
	Table *catalog.Table
	Rel   int
	Alias string
}

func (g *Get) Children() []Node { return nil }
func (g *Get) Rels() map[int]bool {
	return map[int]bool{g.Rel: true}
}
func (g *Get) String() string {
	if g.Alias != "" && g.Alias != g.Table.Name {
		return fmt.Sprintf("Get(%s as %s)", g.Table.Name, g.Alias)
	}
	return fmt.Sprintf("Get(%s)", g.Table.Name)
}

// Select filters its child by a predicate.
type Select struct {
	Pred  expr.Expr
	Child Node
}

func (s *Select) Children() []Node   { return []Node{s.Child} }
func (s *Select) Rels() map[int]bool { return s.Child.Rels() }
func (s *Select) String() string     { return fmt.Sprintf("Select(%s)", s.Pred) }

// Join combines two children under a predicate. Type distinguishes inner
// joins from the semi joins that IN-subqueries become and from the
// left/right outer joins of the surface syntax. Left is the child the
// physical plan executes first (the paper's "outer"); for outer types the
// plan.JoinType says which side is preserved (LeftOuterJoin preserves
// Left, RightOuterJoin preserves Right).
type Join struct {
	Type        plan.JoinType
	Pred        expr.Expr
	Left, Right Node
}

func (j *Join) Children() []Node   { return []Node{j.Left, j.Right} }
func (j *Join) Rels() map[int]bool { return union(j.Left.Rels(), j.Right.Rels()) }
func (j *Join) String() string {
	return fmt.Sprintf("%sJoin(%s)", titleCase(j.Type.String()), j.Pred)
}

// Project computes the output column list.
type Project struct {
	Cols  []plan.ProjCol
	Child Node
}

func (p *Project) Children() []Node   { return []Node{p.Child} }
func (p *Project) Rels() map[int]bool { return p.Child.Rels() }
func (p *Project) String() string {
	names := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		if c.Name != "" {
			names[i] = c.Name
		} else {
			names[i] = c.E.String()
		}
	}
	return "Project(" + strings.Join(names, ", ") + ")"
}

// GroupBy groups and aggregates.
type GroupBy struct {
	Groups []plan.GroupCol
	Aggs   []plan.AggSpec
	Child  Node
}

func (g *GroupBy) Children() []Node   { return []Node{g.Child} }
func (g *GroupBy) Rels() map[int]bool { return g.Child.Rels() }
func (g *GroupBy) String() string {
	return fmt.Sprintf("GroupBy(%d groups, %d aggs)", len(g.Groups), len(g.Aggs))
}

// Update is the DML update over the rows its child produces; the child must
// include the target table's Get (relation Rel) with row identity.
type Update struct {
	Table *catalog.Table
	Rel   int
	Sets  []plan.SetClause
	Child Node
}

func (u *Update) Children() []Node   { return []Node{u.Child} }
func (u *Update) Rels() map[int]bool { return u.Child.Rels() }
func (u *Update) String() string     { return fmt.Sprintf("Update(%s)", u.Table.Name) }

// Delete is the DML delete over the rows its child produces; the child
// must include the target table's Get (relation Rel) with row identity.
type Delete struct {
	Table *catalog.Table
	Rel   int
	Child Node
}

func (d *Delete) Children() []Node   { return []Node{d.Child} }
func (d *Delete) Rels() map[int]bool { return d.Child.Rels() }
func (d *Delete) String() string     { return fmt.Sprintf("Delete(%s)", d.Table.Name) }

// Explain renders a logical tree with indentation.
func Explain(n Node) string {
	var b strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if depth > 0 {
			b.WriteString("-> ")
		}
		b.WriteString(n.String())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

// titleCase upper-cases the first byte of each ASCII word and joins them,
// so "left outer" renders as "LeftOuter".
func titleCase(s string) string {
	var b []byte
	up := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' {
			up = true
			continue
		}
		if up && c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		up = false
		b = append(b, c)
	}
	return string(b)
}
