package stats

import (
	"testing"

	"partopt/internal/catalog"
	"partopt/internal/part"
	"partopt/internal/storage"
	"partopt/internal/types"
)

func TestCollectBasic(t *testing.T) {
	cat := catalog.New()
	st := storage.NewStore(2)
	tab, err := cat.CreateTable("r",
		[]catalog.Column{{Name: "a", Kind: types.KindInt}, {Name: "b", Kind: types.KindInt}},
		catalog.Hashed(0),
		part.RangeLevel(1, types.NewInt(0), types.NewInt(50), types.NewInt(100)),
	)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	st.CreateTable(tab)
	for i := int64(0); i < 100; i++ {
		row := types.Row{types.NewInt(i % 10), types.NewInt(i)}
		if err := st.Insert(tab, row); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	s, err := Collect(st, tab)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if s.RowCount != 100 {
		t.Errorf("RowCount = %d", s.RowCount)
	}
	if s.Cols[0].NDV != 10 || s.Cols[1].NDV != 100 {
		t.Errorf("NDV = %d, %d; want 10, 100", s.Cols[0].NDV, s.Cols[1].NDV)
	}
	if s.Cols[1].Min.Int() != 0 || s.Cols[1].Max.Int() != 99 {
		t.Errorf("min/max = %v/%v", s.Cols[1].Min, s.Cols[1].Max)
	}
	if len(s.LeafRows) != 2 {
		t.Errorf("LeafRows = %v", s.LeafRows)
	}
	for leaf, n := range s.LeafRows {
		if n != 50 {
			t.Errorf("leaf %d rows = %d, want 50", leaf, n)
		}
	}
	if tab.Stats != s {
		t.Errorf("stats not attached to catalog entry")
	}
}

func TestCollectReplicatedCountsOneCopy(t *testing.T) {
	cat := catalog.New()
	st := storage.NewStore(3)
	tab, err := cat.CreateTable("dim",
		[]catalog.Column{{Name: "id", Kind: types.KindInt}},
		catalog.Replicated(),
	)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	st.CreateTable(tab)
	for i := int64(0); i < 7; i++ {
		if err := st.Insert(tab, types.Row{types.NewInt(i)}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	s, err := Collect(st, tab)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if s.RowCount != 7 {
		t.Errorf("replicated RowCount = %d, want 7 (one copy)", s.RowCount)
	}
}

func TestCollectNullFraction(t *testing.T) {
	cat := catalog.New()
	st := storage.NewStore(1)
	tab, _ := cat.CreateTable("t",
		[]catalog.Column{{Name: "x", Kind: types.KindInt}},
		catalog.Hashed(0),
	)
	st.CreateTable(tab)
	for i := 0; i < 4; i++ {
		v := types.Null
		if i%2 == 0 {
			v = types.NewInt(int64(i))
		}
		if err := st.Insert(tab, types.Row{v}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	s, err := Collect(st, tab)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if s.Cols[0].NullFrac != 0.5 {
		t.Errorf("NullFrac = %g, want 0.5", s.Cols[0].NullFrac)
	}
	if s.Cols[0].NDV != 2 {
		t.Errorf("NDV = %d, want 2", s.Cols[0].NDV)
	}
}

func TestCollectAll(t *testing.T) {
	cat := catalog.New()
	st := storage.NewStore(1)
	for _, n := range []string{"a", "b"} {
		tab, err := cat.CreateTable(n, []catalog.Column{{Name: "x", Kind: types.KindInt}}, catalog.Hashed(0))
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		st.CreateTable(tab)
	}
	if err := CollectAll(st, cat); err != nil {
		t.Fatalf("CollectAll: %v", err)
	}
	for _, tab := range cat.Tables() {
		if tab.Stats == nil {
			t.Errorf("table %q missing stats", tab.Name)
		}
	}
}
