// Package stats collects table statistics (row counts, per-partition
// counts, per-column NDV/min/max) used by the optimizers' cost models.
// Collection is exact — the simulated datasets are small enough that
// sampling would only add noise to the experiments.
package stats

import (
	"partopt/internal/catalog"
	"partopt/internal/part"
	"partopt/internal/storage"
	"partopt/internal/types"
)

// Collect computes statistics for a table and attaches them to its catalog
// entry.
func Collect(st *storage.Store, t *catalog.Table) (*catalog.TableStats, error) {
	out := &catalog.TableStats{
		LeafRows: map[part.OID]int64{},
		Cols:     make([]catalog.ColumnStats, len(t.Cols)),
	}
	distinct := make([]map[string]struct{}, len(t.Cols))
	nulls := make([]int64, len(t.Cols))
	for i := range distinct {
		distinct[i] = map[string]struct{}{}
	}

	segs := st.Segments()
	if t.Dist.Kind == catalog.DistReplicated {
		segs = 1 // all copies identical
	}
	for _, leaf := range storage.LeafOIDs(t) {
		for seg := 0; seg < segs; seg++ {
			rows, err := st.ScanLeaf(t.OID, seg, leaf)
			if err != nil {
				return nil, err
			}
			out.LeafRows[leaf] += int64(len(rows))
			out.RowCount += int64(len(rows))
			for _, r := range rows {
				for c, v := range r {
					if v.IsNull() {
						nulls[c]++
						continue
					}
					distinct[c][v.String()] = struct{}{}
					cs := &out.Cols[c]
					if cs.Min.IsNull() || types.Compare(v, cs.Min) < 0 {
						cs.Min = v
					}
					if cs.Max.IsNull() || types.Compare(v, cs.Max) > 0 {
						cs.Max = v
					}
				}
			}
		}
	}
	for c := range out.Cols {
		out.Cols[c].NDV = int64(len(distinct[c]))
		if out.RowCount > 0 {
			out.Cols[c].NullFrac = float64(nulls[c]) / float64(out.RowCount)
		}
	}
	t.Stats = out
	return out, nil
}

// CollectAll collects statistics for every table in the catalog.
func CollectAll(st *storage.Store, cat *catalog.Catalog) error {
	for _, t := range cat.Tables() {
		if _, err := Collect(st, t); err != nil {
			return err
		}
	}
	return nil
}
