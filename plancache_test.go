package partopt

import (
	"regexp"
	"strings"
	"testing"
)

// cacheFixture builds a 12-way monthly-partitioned orders table with a row
// in every partition and fresh statistics.
func cacheFixture(t *testing.T) *Engine {
	t.Helper()
	eng, err := New(4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.MustCreateTable("orders",
		Columns("id", TypeInt, "amount", TypeFloat, "date", TypeDate),
		DistributedBy("id"),
		PartitionByRangeMonthly("date", 2013, 1, 12))
	id := 0
	for m := 1; m <= 12; m++ {
		for d := 1; d <= 5; d++ {
			id++
			if err := eng.Insert("orders", Int(int64(id)), Float(float64(m*d)), Date(2013, m, d)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
	}
	if err := eng.Analyze(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return eng
}

// The acceptance criterion: a cache hit performs zero optimizer calls.
// Textually distinct point queries share one fingerprint (literals are
// auto-parameterized under Orca), so the second query must not optimize.
func TestCacheHitSkipsOptimizer(t *testing.T) {
	eng := cacheFixture(t)
	if _, err := eng.Query("SELECT amount FROM orders WHERE id = 7"); err != nil {
		t.Fatalf("cold query: %v", err)
	}
	before := eng.PlanCacheStats()
	rows, err := eng.Query("SELECT amount FROM orders WHERE id = 23")
	if err != nil {
		t.Fatalf("warm query: %v", err)
	}
	after := eng.PlanCacheStats()
	if got := after.Optimizations - before.Optimizations; got != 0 {
		t.Errorf("cache hit ran the optimizer %d time(s)", got)
	}
	if after.Hits != before.Hits+1 {
		t.Errorf("hits %d -> %d, want +1", before.Hits, after.Hits)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Float() != 15 {
		t.Errorf("warm query answered %v, want [[15]]", rows.Data)
	}
}

// Satellite regression: Explain and PlanSize used to re-plan on every
// call. Back-to-back Explain / PlanSize / Query over one fingerprint now
// optimize exactly once.
func TestExplainPlanSizeQueryOptimizeOnce(t *testing.T) {
	eng := cacheFixture(t)
	const q = "SELECT amount FROM orders WHERE id = 7"
	before := eng.PlanCacheStats()
	first, err := eng.Explain(q)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	second, err := eng.Explain(q)
	if err != nil {
		t.Fatalf("Explain again: %v", err)
	}
	if first != second {
		t.Errorf("Explain not deterministic across cache hit:\n%s\nvs\n%s", first, second)
	}
	size, err := eng.PlanSize(q)
	if err != nil {
		t.Fatalf("PlanSize: %v", err)
	}
	if size <= 0 {
		t.Errorf("PlanSize = %d", size)
	}
	if _, err := eng.Query(q); err != nil {
		t.Fatalf("Query: %v", err)
	}
	// A differently-spelled query with the same shape also reuses the plan.
	if _, err := eng.Query("select amount from orders where id = 9"); err != nil {
		t.Fatalf("Query variant: %v", err)
	}
	after := eng.PlanCacheStats()
	if got := after.Optimizations - before.Optimizations; got != 1 {
		t.Errorf("fingerprint optimized %d times, want 1", got)
	}
}

// Golden: a cache-hit execution's EXPLAIN ANALYZE is byte-identical to the
// cold run's (timings and memory figures normalized away — everything
// structural must match exactly).
func TestCacheHitExplainAnalyzeMatchesCold(t *testing.T) {
	eng := cacheFixture(t)
	const q = "SELECT sum(amount) FROM orders WHERE date BETWEEN date '2013-03-01' AND date '2013-05-31'"
	cold, err := eng.Query(q)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	warm, err := eng.Query(q)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	st := eng.PlanCacheStats()
	if st.Hits == 0 {
		t.Fatalf("second run was not a cache hit: %+v", st)
	}
	// The partition-OID cache line is the one legitimate difference: the
	// cold run misses it into existence, the hit run is served from it.
	oidRe := regexp.MustCompile(`OID cache: \d+ hit\(s\), \d+ miss\(es\)`)
	norm := func(s string) string {
		return oidRe.ReplaceAllString(normalizeAnalyze(s), "OID cache: H hit(s), M miss(es)")
	}
	if got, want := norm(warm.ExplainAnalyze), norm(cold.ExplainAnalyze); got != want {
		t.Errorf("cache-hit EXPLAIN ANALYZE differs from cold run:\n--- cold ---\n%s\n--- hit ---\n%s", want, got)
	}
}

// Golden: one cached dynamic-selection plan, executed with different
// parameters, reports a different "Partitions selected" count on each run
// — the selector re-derives the partition set at execution time.
func TestCachedSelectionVariesPerParameter(t *testing.T) {
	eng := cacheFixture(t)
	st, err := eng.Prepare("SELECT sum(amount) FROM orders WHERE date BETWEEN $1 AND $2")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	before := eng.PlanCacheStats()
	narrow, err := st.ExplainAnalyze(Date(2013, 3, 1), Date(2013, 3, 31))
	if err != nil {
		t.Fatalf("narrow: %v", err)
	}
	wide, err := st.ExplainAnalyze(Date(2013, 3, 1), Date(2013, 8, 31))
	if err != nil {
		t.Fatalf("wide: %v", err)
	}
	after := eng.PlanCacheStats()
	if got := after.Optimizations - before.Optimizations; got != 1 {
		t.Errorf("prepared statement optimized %d times across executions, want 1", got)
	}
	if !strings.Contains(narrow, "Partitions selected: 1 (out of 12)") {
		t.Errorf("narrow run missing selection line:\n%s", narrow)
	}
	if !strings.Contains(wide, "Partitions selected: 6 (out of 12)") {
		t.Errorf("wide run missing selection line:\n%s", wide)
	}
}

// Explicit $n and auto-lifted literals normalize to the same fingerprint,
// so a prepared parameterized query and its literal spelling share a plan.
func TestExplicitAndLiftedParamsShareFingerprint(t *testing.T) {
	eng := cacheFixture(t)
	if _, err := eng.Query("SELECT amount FROM orders WHERE id = $1", Int(7)); err != nil {
		t.Fatalf("explicit: %v", err)
	}
	before := eng.PlanCacheStats()
	rows, err := eng.Query("SELECT amount FROM orders WHERE id = 23")
	if err != nil {
		t.Fatalf("literal: %v", err)
	}
	after := eng.PlanCacheStats()
	if after.Optimizations != before.Optimizations {
		t.Errorf("literal spelling re-optimized")
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Float() != 15 {
		t.Errorf("got %v, want [[15]]", rows.Data)
	}
}

// Every invalidating surface must bump the epoch and force a re-plan.
func TestInvalidatingSurfacesBumpEpoch(t *testing.T) {
	eng := cacheFixture(t)
	const q = "SELECT amount FROM orders WHERE id = 7"
	run := func() {
		t.Helper()
		if _, err := eng.Query(q); err != nil {
			t.Fatalf("query: %v", err)
		}
	}
	run()
	surfaces := []struct {
		name string
		op   func() error
	}{
		{"Analyze", eng.Analyze},
		{"Insert", func() error { return eng.Insert("orders", Int(999), Float(1), Date(2013, 6, 15)) }},
		{"ExecDML", func() error {
			_, err := eng.Exec("UPDATE orders SET amount = amount + 0 WHERE id = 999")
			return err
		}},
		{"CreateTable", func() error {
			return eng.CreateTable("scratch_inv", Columns("x", TypeInt))
		}},
		{"SetOptimizer", func() error { eng.SetOptimizer(LegacyPlanner); return nil }},
		{"SetOptimizerBack", func() error { eng.SetOptimizer(Orca); return nil }},
		{"SetPartitionSelection", func() error { eng.SetPartitionSelection(false); return nil }},
		{"SetPartitionSelectionBack", func() error { eng.SetPartitionSelection(true); return nil }},
	}
	for _, s := range surfaces {
		before := eng.PlanCacheStats()
		if err := s.op(); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		after := eng.PlanCacheStats()
		if after.Epoch <= before.Epoch {
			t.Errorf("%s did not bump the epoch (%d -> %d)", s.name, before.Epoch, after.Epoch)
			continue
		}
		run()
		if got := eng.PlanCacheStats(); got.Optimizations <= after.Optimizations {
			t.Errorf("%s: stale plan served after epoch bump", s.name)
		}
	}
}

// A DDL-invalidated plan must not be served: after CreateIndex the same
// query compiles to an index plan.
func TestNoStalePlanAfterCreateIndex(t *testing.T) {
	eng := cacheFixture(t)
	const q = "SELECT amount FROM orders WHERE id = 7"
	if _, err := eng.Query(q); err != nil {
		t.Fatalf("pre-index query: %v", err)
	}
	if err := eng.CreateIndex("orders_id_idx", "orders", "id"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	out, err := eng.Explain(q)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(out, "orders_id_idx") {
		t.Errorf("post-index plan does not use the index — stale cached plan?\n%s", out)
	}
}

// Capacity 0 disables caching: every execution optimizes.
func TestPlanCacheDisabled(t *testing.T) {
	eng := cacheFixture(t)
	eng.SetPlanCacheCapacity(0)
	before := eng.PlanCacheStats()
	for i := 0; i < 3; i++ {
		if _, err := eng.Query("SELECT amount FROM orders WHERE id = 7"); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	after := eng.PlanCacheStats()
	if got := after.Optimizations - before.Optimizations; got != 3 {
		t.Errorf("disabled cache optimized %d times, want 3", got)
	}
	if after.Hits != 0 {
		t.Errorf("disabled cache reported %d hits", after.Hits)
	}
}

// The legacy planner caches too, keyed on the raw (un-parameterized) text:
// distinct literals get distinct entries — its static pruning depends on
// the literal values — but re-running one exact text is still a hit.
func TestLegacyPlannerCachesByLiteralText(t *testing.T) {
	eng := cacheFixture(t)
	eng.SetOptimizer(LegacyPlanner)
	const q = "SELECT sum(amount) FROM orders WHERE date < date '2013-04-01'"
	first, err := eng.Query(q)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	before := eng.PlanCacheStats()
	second, err := eng.Query(q)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	after := eng.PlanCacheStats()
	if after.Optimizations != before.Optimizations {
		t.Errorf("exact legacy re-run re-optimized")
	}
	if first.PartsScanned["orders"] != 3 || second.PartsScanned["orders"] != 3 {
		t.Errorf("legacy static pruning changed under caching: %v then %v",
			first.PartsScanned, second.PartsScanned)
	}
	// A different literal is a different legacy fingerprint (plan-time
	// pruning must see it), so it misses and re-optimizes.
	third, err := eng.Query("SELECT sum(amount) FROM orders WHERE date < date '2013-02-01'")
	if err != nil {
		t.Fatalf("variant: %v", err)
	}
	if got := eng.PlanCacheStats(); got.Optimizations != after.Optimizations+1 {
		t.Errorf("legacy literal variant did not re-optimize")
	}
	if third.PartsScanned["orders"] != 1 {
		t.Errorf("variant scanned %d partitions, want 1", third.PartsScanned["orders"])
	}
}

// Parameter arity errors: lifted literals never change what the caller
// must supply, and shortages report the explicit count.
func TestPreparedParamArity(t *testing.T) {
	eng := cacheFixture(t)
	_, err := eng.Query("SELECT amount FROM orders WHERE id = $1 AND amount > 3")
	if err == nil || !strings.Contains(err.Error(), "needs 1 parameters, got 0") {
		t.Errorf("shortage error = %v", err)
	}
	if _, err := eng.Query("SELECT amount FROM orders WHERE id = $1 AND amount > 3", Int(7)); err != nil {
		t.Errorf("one explicit arg rejected: %v", err)
	}
}

// Prepared DML statements execute (uncached) and report affected rows.
func TestPreparedDML(t *testing.T) {
	eng := cacheFixture(t)
	ins, err := eng.Prepare("INSERT INTO orders VALUES ($1, $2, $3)")
	if err != nil {
		t.Fatalf("Prepare insert: %v", err)
	}
	if n, err := ins.Exec(Int(500), Float(2.5), Date(2013, 9, 9)); err != nil || n != 1 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	upd, err := eng.Prepare("UPDATE orders SET amount = amount + 1 WHERE id = $1")
	if err != nil {
		t.Fatalf("Prepare update: %v", err)
	}
	if n, err := upd.Exec(Int(500)); err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	if _, err := ins.Query(Int(1)); err == nil || !strings.Contains(err.Error(), "use Exec") {
		t.Errorf("Query on DML stmt = %v", err)
	}
	sel, err := eng.Prepare("SELECT amount FROM orders WHERE id = $1")
	if err != nil {
		t.Fatalf("Prepare select: %v", err)
	}
	if _, err := sel.Exec(Int(1)); err == nil || !strings.Contains(err.Error(), "use Query") {
		t.Errorf("Exec on SELECT stmt = %v", err)
	}
	if rows, err := sel.Query(Int(500)); err != nil || len(rows.Data) != 1 || rows.Data[0][0].Float() != 3.5 {
		t.Errorf("select after DML: %v, %v", rows, err)
	}
}
