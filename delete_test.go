package partopt

import (
	"strings"
	"testing"
)

func TestDeleteSimple(t *testing.T) {
	eng := paperEngine(t, 2)
	for i, opt := range []OptimizerKind{Orca, LegacyPlanner} {
		eng.SetOptimizer(opt)
		// Delete a different month per optimizer so both really delete.
		month := []string{"'2012-01-01' AND '2012-01-31'", "'2012-02-01' AND '2012-02-29'"}[i]
		n, err := eng.Exec("DELETE FROM orders WHERE date BETWEEN " + month)
		if err != nil {
			t.Fatalf("%v: Exec: %v", opt, err)
		}
		if n != 10 {
			t.Errorf("%v: deleted = %d, want 10", opt, n)
		}
	}
	rows, err := eng.Query("SELECT count(*) FROM orders")
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rows.Data[0][0].Int() != 240-20 {
		t.Errorf("remaining = %v, want 220", rows.Data[0][0])
	}
	// Static elimination applies to DELETE too.
	eng.SetOptimizer(Orca)
	out, err := eng.Explain("DELETE FROM orders WHERE date BETWEEN '2012-03-01' AND '2012-03-31'")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(out, "Delete orders") || !strings.Contains(out, "PartitionSelector") {
		t.Errorf("delete plan missing operators:\n%s", out)
	}
}

func TestDeleteUsingJoin(t *testing.T) {
	eng := paperEngine(t, 2)
	eng.SetOptimizer(Orca)
	// Delete all 2013-Q4 fact rows via the dimension table.
	n, err := eng.Exec(`DELETE FROM orders_fk USING date_dim d
		WHERE orders_fk.date_id = d.date_id AND d.year = 2013 AND d.month BETWEEN 10 AND 12`)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if n != 30 {
		t.Errorf("deleted = %d, want 30", n)
	}
	rows, err := eng.Query("SELECT count(*) FROM orders_fk")
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rows.Data[0][0].Int() != 240-30 {
		t.Errorf("remaining = %v, want 210", rows.Data[0][0])
	}
	// Dynamic elimination: only the last three month-partitions are read.
	rows, err = eng.Query("SELECT count(*) FROM orders_fk WHERE date_id >= 21")
	if err != nil {
		t.Fatalf("verify tail: %v", err)
	}
	if rows.Data[0][0].Int() != 0 {
		t.Errorf("tail rows = %v, want 0", rows.Data[0][0])
	}
}

func TestDeleteUsingJoinLegacy(t *testing.T) {
	eng := paperEngine(t, 2)
	eng.SetOptimizer(LegacyPlanner)
	n, err := eng.Exec(`DELETE FROM orders_fk USING date_dim d
		WHERE orders_fk.date_id = d.date_id AND d.year = 2012 AND d.month = 1`)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if n != 10 {
		t.Errorf("deleted = %d, want 10", n)
	}
}

func TestDeleteWholeTableAndReinsert(t *testing.T) {
	eng := paperEngine(t, 2)
	n, err := eng.Exec("DELETE FROM orders_fk")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if n != 240 {
		t.Errorf("deleted = %d, want 240", n)
	}
	if err := eng.Insert("orders_fk", Int(999), Float(1), Int(5)); err != nil {
		t.Fatalf("reinsert: %v", err)
	}
	rows, err := eng.Query("SELECT count(*) FROM orders_fk")
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rows.Data[0][0].Int() != 1 {
		t.Errorf("count = %v, want 1", rows.Data[0][0])
	}
}

func TestDeletePlanSizeShapes(t *testing.T) {
	// DELETE ... USING over partitioned tables shows the same plan-size
	// contrast as the Fig. 18(c) update.
	eng := paperEngine(t, 2)
	const q = `DELETE FROM orders_fk USING date_dim d WHERE orders_fk.date_id = d.date_id`
	eng.SetOptimizer(Orca)
	orcaSize, err := eng.PlanSize(q)
	if err != nil {
		t.Fatalf("orca PlanSize: %v", err)
	}
	eng.SetOptimizer(LegacyPlanner)
	legacySize, err := eng.PlanSize(q)
	if err != nil {
		t.Fatalf("legacy PlanSize: %v", err)
	}
	if legacySize < 10*orcaSize {
		t.Errorf("legacy delete plan should dwarf orca's: %dB vs %dB", legacySize, orcaSize)
	}
}

func TestInsertStatement(t *testing.T) {
	eng := paperEngine(t, 2)
	n, err := eng.Exec(`INSERT INTO orders VALUES
		(9001, 1.5, '2013-03-03', 14),
		(9002, 2.5, '2013-03-04', 14)`)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if n != 2 {
		t.Errorf("inserted = %d, want 2", n)
	}
	rows, err := eng.Query("SELECT count(*) FROM orders WHERE order_id >= 9001")
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rows.Data[0][0].Int() != 2 {
		t.Errorf("count = %v", rows.Data[0][0])
	}
	// The new rows routed into the March-2013 partition: scanning that
	// date range finds them with one partition read.
	rows, err = eng.Query("SELECT count(*) FROM orders WHERE date BETWEEN '2013-03-01' AND '2013-03-31'")
	if err != nil {
		t.Fatalf("verify partition: %v", err)
	}
	if rows.Data[0][0].Int() != 12 {
		t.Errorf("march count = %v, want 12", rows.Data[0][0])
	}
	if rows.PartsScanned["orders"] != 1 {
		t.Errorf("parts = %d, want 1", rows.PartsScanned["orders"])
	}

	// Column-list form with params and NULL defaulting.
	n, err = eng.Exec("INSERT INTO orders (order_id, date, amount) VALUES ($1, '2012-07-07', $2)", Int(9003), Float(7))
	if err != nil {
		t.Fatalf("Exec cols: %v", err)
	}
	if n != 1 {
		t.Errorf("inserted = %d", n)
	}
	rows, err = eng.Query("SELECT date_id FROM orders WHERE order_id = 9003")
	if err != nil {
		t.Fatalf("verify cols: %v", err)
	}
	if !rows.Data[0][0].IsNull() {
		t.Errorf("unnamed column should be NULL, got %v", rows.Data[0][0])
	}

	// Errors.
	bad := []string{
		"INSERT INTO ghost VALUES (1)",
		"INSERT INTO orders VALUES (1)",                            // arity
		"INSERT INTO orders (ghost) VALUES (1)",                    // unknown column
		"INSERT INTO orders (order_id, order_id) VALUES (1, 2)",    // duplicate column
		"INSERT INTO orders VALUES (1, 2, '2099-01-01', 3)",        // outside all partitions
		"INSERT INTO orders VALUES (order_id, 1, '2012-01-01', 1)", // non-constant
	}
	for _, q := range bad {
		if _, err := eng.Exec(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}
