// Package-level benchmarks: one per table/figure of the paper's evaluation.
// Each benchmark regenerates its experiment through internal/bench and
// reports the headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation section. cmd/experiments prints the same
// experiments as formatted tables.
package partopt_test

import (
	"fmt"
	"testing"

	"partopt"
	"partopt/internal/bench"
	"partopt/internal/workload"
)

func benchStar() workload.StarConfig {
	cfg := workload.DefaultStarConfig()
	cfg.SalesPerDay = 20
	return cfg
}

// BenchmarkTable2_ScanOverhead reproduces Table 2: full-scan overhead of
// partitioning lineitem at 1/42/84/183/365 partitions.
func BenchmarkTable2_ScanOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable2(bench.Table2Config{Rows: 30000, Segments: 4, Iters: 5})
		if err != nil {
			b.Fatalf("RunTable2: %v", err)
		}
		if i == 0 {
			for _, r := range rows[1:] {
				b.ReportMetric(r.OverheadPct, fmt.Sprintf("overhead%%@%dparts", r.Parts))
			}
		}
	}
}

// BenchmarkTable3_WorkloadClassification reproduces Table 3: how often each
// optimizer eliminates partitions on the star-schema workload.
func BenchmarkTable3_WorkloadClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, err := bench.RunWorkload(benchStar(), 4)
		if err != nil {
			b.Fatalf("RunWorkload: %v", err)
		}
		if i == 0 {
			counts := map[bench.Category]int{}
			for _, s := range stats {
				counts[bench.Classify(s)]++
			}
			total := float64(len(stats))
			b.ReportMetric(100*float64(counts[bench.OrcaOnly])/total, "orca-only%")
			b.ReportMetric(100*float64(counts[bench.Equal])/total, "equal%")
			b.ReportMetric(100*float64(counts[bench.OrcaFewer]+counts[bench.PlannerOnly])/total, "orca-worse%")
		}
	}
}

// BenchmarkFigure16_PartsScanned reproduces Figure 16: scanned partitions
// per fact table, Planner vs Orca.
func BenchmarkFigure16_PartsScanned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, err := bench.RunWorkload(benchStar(), 4)
		if err != nil {
			b.Fatalf("RunWorkload: %v", err)
		}
		if i == 0 {
			var planner, orca int
			for _, r := range bench.Figure16(stats) {
				planner += r.PlannerParts
				orca += r.OrcaParts
			}
			b.ReportMetric(float64(planner), "planner-parts")
			b.ReportMetric(float64(orca), "orca-parts")
		}
	}
}

// BenchmarkFigure17_SelectionOnOff reproduces Figure 17: per-query runtime
// improvement when partition selection is enabled.
func BenchmarkFigure17_SelectionOnOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure17(benchStar(), 4, 2)
		if err != nil {
			b.Fatalf("RunFigure17: %v", err)
		}
		if i == 0 {
			over50 := 0
			for _, r := range rows {
				if r.ImprovementPct >= 50 {
					over50++
				}
			}
			b.ReportMetric(100*float64(over50)/float64(len(rows)), "queries>50%improved%")
		}
	}
}

// BenchmarkFigure18a_StaticPlanSize reproduces Figure 18(a): plan size vs
// percentage of partitions scanned under a static predicate.
func BenchmarkFigure18a_StaticPlanSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure18a(4)
		if err != nil {
			b.Fatalf("RunFigure18a: %v", err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.PlannerBytes), "planner-bytes@100%")
			b.ReportMetric(float64(last.OrcaBytes), "orca-bytes@100%")
		}
	}
}

// BenchmarkFigure18b_DynamicPlanSize reproduces Figure 18(b): plan size vs
// partition count for the dynamic-elimination join.
func BenchmarkFigure18b_DynamicPlanSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure18b(4)
		if err != nil {
			b.Fatalf("RunFigure18b: %v", err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.PlannerBytes), "planner-bytes@300parts")
			b.ReportMetric(float64(last.OrcaBytes), "orca-bytes@300parts")
		}
	}
}

// BenchmarkFigure18c_DMLPlanSize reproduces Figure 18(c): plan size vs
// partition count for the partitioned update join (quadratic vs flat).
func BenchmarkFigure18c_DMLPlanSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure18c(4)
		if err != nil {
			b.Fatalf("RunFigure18c: %v", err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.PlannerBytes), "planner-bytes@300parts")
			b.ReportMetric(float64(last.OrcaBytes), "orca-bytes@300parts")
		}
	}
}

// BenchmarkQueryEndToEnd measures a single representative dynamic
// elimination query through the whole stack (parse → optimize → execute).
func BenchmarkQueryEndToEnd(b *testing.B) {
	eng, err := partopt.New(4)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	cfg := benchStar()
	if err := workload.BuildStar(eng, cfg); err != nil {
		b.Fatalf("BuildStar: %v", err)
	}
	const q = `SELECT avg(amount) FROM store_sales WHERE date_id IN
		(SELECT date_id FROM date_dim WHERE month BETWEEN 22 AND 24)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(q); err != nil {
			b.Fatalf("Query: %v", err)
		}
	}
}

// BenchmarkOptimizeOnly measures pure optimization time of the Fig. 8 style
// join query under both optimizers.
func BenchmarkOptimizeOnly(b *testing.B) {
	eng, err := partopt.New(4)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	cfg := benchStar()
	cfg.SalesPerDay = 1
	if err := workload.BuildStar(eng, cfg); err != nil {
		b.Fatalf("BuildStar: %v", err)
	}
	const q = `SELECT count(*) FROM date_dim d, customer_dim c, store_sales s
		WHERE d.date_id = s.date_id AND c.cust_id = s.cust_id AND d.month = 23 AND c.state = 'CA'`
	for _, opt := range []partopt.OptimizerKind{partopt.Orca, partopt.LegacyPlanner} {
		b.Run(opt.String(), func(b *testing.B) {
			eng.SetOptimizer(opt)
			for i := 0; i < b.N; i++ {
				if _, err := eng.Explain(q); err != nil {
					b.Fatalf("Explain: %v", err)
				}
			}
		})
	}
}

// BenchmarkAblation_PartitionWiseJoin compares the partition-wise join
// (the §5 related-work extension) against the monolithic hash join on
// co-partitioned, co-distributed tables. The computed-key variant disables
// the partition-wise rule while computing the same result.
func BenchmarkAblation_PartitionWiseJoin(b *testing.B) {
	eng, err := partopt.New(4)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	for _, name := range []string{"pa", "pb"} {
		eng.MustCreateTable(name,
			partopt.Columns("k", partopt.TypeInt, "v", partopt.TypeInt),
			partopt.DistributedBy("k"),
			partopt.PartitionByRangeInt("k", 0, 100000, 50),
		)
		rows := make([][]partopt.Value, 0, 20000)
		for i := int64(0); i < 100000; i += 5 {
			rows = append(rows, []partopt.Value{partopt.Int(i), partopt.Int(i % 97)})
		}
		if err := eng.InsertRows(name, rows); err != nil {
			b.Fatalf("load %s: %v", name, err)
		}
	}
	if err := eng.Analyze(); err != nil {
		b.Fatalf("Analyze: %v", err)
	}
	cases := []struct {
		name string
		sql  string
	}{
		{"partition-wise", "SELECT count(*) FROM pa, pb WHERE pa.k = pb.k"},
		{"hash-join", "SELECT count(*) FROM pa, pb WHERE pa.k + 0 = pb.k"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := eng.Query(c.sql)
				if err != nil {
					b.Fatalf("Query: %v", err)
				}
				if rows.Data[0][0].Int() != 20000 {
					b.Fatalf("count = %v", rows.Data[0][0])
				}
			}
		})
	}
}

// BenchmarkAblation_IndexScan compares a DynamicIndexScan (partition
// elimination + per-leaf index lookup — the paper's future-work indexing)
// against the plain DynamicScan+Filter on the same selective query.
func BenchmarkAblation_IndexScan(b *testing.B) {
	build := func(withIndex bool) *partopt.Engine {
		eng, err := partopt.New(4)
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		eng.MustCreateTable("sales",
			partopt.Columns("date_id", partopt.TypeInt, "amount", partopt.TypeInt),
			partopt.DistributedBy("amount"),
			partopt.PartitionByRangeInt("date_id", 0, 240, 24),
		)
		rows := make([][]partopt.Value, 0, 240*200)
		for d := int64(0); d < 240; d++ {
			for i := int64(0); i < 200; i++ {
				rows = append(rows, []partopt.Value{partopt.Int(d), partopt.Int((d*31 + i*53) % 10000)})
			}
		}
		if err := eng.InsertRows("sales", rows); err != nil {
			b.Fatalf("load: %v", err)
		}
		if err := eng.Analyze(); err != nil {
			b.Fatalf("Analyze: %v", err)
		}
		if withIndex {
			if err := eng.CreateIndex("sales_amount", "sales", "amount"); err != nil {
				b.Fatalf("CreateIndex: %v", err)
			}
		}
		return eng
	}
	const q = "SELECT count(*) FROM sales WHERE date_id BETWEEN 100 AND 119 AND amount >= 9900"
	for _, c := range []struct {
		name      string
		withIndex bool
	}{{"scan", false}, {"index", true}} {
		eng := build(c.withIndex)
		if _, err := eng.Query(q); err != nil { // warm (index build)
			b.Fatalf("warm: %v", err)
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(q); err != nil {
					b.Fatalf("Query: %v", err)
				}
			}
		})
	}
}
