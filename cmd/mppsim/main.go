// Command mppsim is an interactive shell over the simulated MPP engine: it
// loads a demo dataset (the paper's star schema) and accepts SQL, EXPLAIN,
// and a few meta commands. It is the quickest way to poke at partition
// elimination by hand:
//
//	$ go run ./cmd/mppsim
//	mppsim> \optimizer planner
//	mppsim> EXPLAIN SELECT count(*) FROM store_sales WHERE date_id < 30
//	mppsim> SELECT avg(amount) FROM store_sales WHERE date_id IN
//	        (SELECT date_id FROM date_dim WHERE month BETWEEN 22 AND 24)
//
// Meta commands:
//
//	\optimizer orca|planner   switch optimizer
//	\selection on|off         toggle partition selection
//	\index <table> <column>   create a secondary index
//	\tables                   list tables with partition counts
//	\metrics                  print the engine-wide metrics registry
//	\cache                    print plan- and partition-OID-cache statistics
//	\segments                 segment health and failover count (--fts)
//	\kill <seg>               kill a segment's acting primary (--fts)
//	\revive <seg>             revive and resync a killed segment (--fts)
//	\q                        quit
//
// PREPARE <name> AS <statement> compiles a named prepared statement and
// EXECUTE <name> [arg, ...] runs it, binding arguments to $1, $2, ...
// (integers, floats, 'strings' and YYYY-MM-DD dates). Repeated EXECUTEs
// are served from the plan cache, whose size --plan-cache controls
// (0 disables caching).
//
// --opt-workers N turns on the parallel memo search under Orca: N workers
// explore the memo concurrently and the chosen plan is byte-identical to
// the serial one (EXPLAIN ANALYZE's "optimization:" header reports the
// pool size the plan was compiled with).
//
// EXPLAIN ANALYZE <select> executes the query and prints its plan annotated
// with per-operator actuals, including the paper's "Partitions selected:
// N (out of M)" line. The --explain-analyze flag appends the same tree to
// every query result; --metrics prints the metrics registry when the shell
// exits.
//
// Exit codes: 130 when a query (or the prompt) is interrupted by SIGINT or
// SIGTERM, 124 when a query exceeds the --timeout deadline. Both paths
// report the same partial-statistics block before exiting. SIGTERM is
// handled exactly like SIGINT — graceful cancel, partial stats, exit code
// 130 — so containerized runs drain cleanly instead of dying mid-query.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"partopt"
	"partopt/internal/workload"
)

// session tracks the in-flight query so the SIGINT handler can cancel it:
// the first interrupt cancels the running query (partial stats are printed
// and the shell exits non-zero); an interrupt at the prompt exits directly.
type session struct {
	mu       sync.Mutex
	inflight context.CancelFunc
}

func (s *session) setInflight(c context.CancelFunc) {
	s.mu.Lock()
	s.inflight = c
	s.mu.Unlock()
}

func (s *session) interrupt() {
	s.mu.Lock()
	c := s.inflight
	s.mu.Unlock()
	if c == nil {
		fmt.Println("\ninterrupted")
		shellExit(130)
	}
	c()
}

// atExit runs before any deliberate shell exit (normal or via exit code) —
// it prints the metrics registry when --metrics was given.
var atExit = func() {}

func shellExit(code int) {
	atExit()
	os.Exit(code)
}

func main() {
	segments := flag.Int("segments", 4, "number of cluster segments")
	sales := flag.Int("sales", 20, "star-schema sales rows per day")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none), e.g. 5s")
	memBudget := flag.String("mem-budget", "", "total executor memory budget, e.g. 64M (empty = unlimited)")
	workMem := flag.String("work-mem", "", "per-query spill threshold, e.g. 256K (empty = fair share of the budget)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrently executing queries (0 = unbounded)")
	explainAnalyze := flag.Bool("explain-analyze", false, "print the EXPLAIN ANALYZE tree after every query")
	metrics := flag.Bool("metrics", false, "print the engine metrics registry when the shell exits")
	planCache := flag.Int("plan-cache", partopt.DefaultPlanCacheCapacity, "plan cache capacity in entries (0 disables caching)")
	oidCache := flag.Int("oid-cache", partopt.DefaultOIDCacheCapacity, "partition-OID cache capacity in entries (0 disables caching)")
	ftsOn := flag.Bool("fts", false, "enable segment fault tolerance (mirrored segments, health probing, failover); adds \\segments and \\kill/\\revive")
	optWorkers := flag.Int("opt-workers", 1, "optimizer search workers under Orca (1 = serial search)")
	flag.Parse()

	eng, err := partopt.New(*segments)
	fatalIf(err)
	if *planCache != partopt.DefaultPlanCacheCapacity {
		eng.SetPlanCacheCapacity(*planCache)
	}
	if *oidCache != partopt.DefaultOIDCacheCapacity {
		eng.SetOIDCacheCapacity(*oidCache)
	}
	if *memBudget != "" {
		n, err := parseSize(*memBudget)
		fatalIf(err)
		eng.SetMemBudget(n)
	}
	if *workMem != "" {
		n, err := parseSize(*workMem)
		fatalIf(err)
		eng.SetWorkMem(n)
	}
	if *maxConcurrent > 0 {
		eng.SetMaxConcurrent(*maxConcurrent)
	}
	if *optWorkers > 1 {
		eng.SetOptimizerWorkers(*optWorkers)
	}
	cfg := workload.DefaultStarConfig()
	cfg.SalesPerDay = *sales
	fmt.Printf("loading star schema (%d segments, %d months per fact)...\n", *segments, cfg.Months)
	fatalIf(workload.BuildStar(eng, cfg))
	if *ftsOn {
		// After the bulk load: mirrors clone the loaded heaps once instead
		// of dual-applying every boot insert.
		eng.EnableFaultTolerance(partopt.DefaultFTConfig())
		defer eng.StopFTS()
		fmt.Println("fault tolerance enabled: mirrored segments, probe loop running")
	}
	if *metrics {
		atExit = func() { fmt.Print(eng.Metrics()) }
		defer atExit() // the normal-return paths (\q, EOF) report too
	}

	ses := &session{}
	// SIGTERM gets the same graceful treatment as SIGINT: cancel the
	// in-flight query (partial stats, exit 130) or exit at the prompt —
	// container orchestrators send SIGTERM first, and mid-query state
	// must drain, not die. Registered before "ready." is printed so a
	// supervisor that signals as soon as the shell announces itself never
	// hits the runtime's default kill.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		for range sigCh {
			ses.interrupt()
		}
	}()
	fmt.Println("ready. \\q quits, \\tables lists tables, \\optimizer orca|planner switches.")

	// queryCtx opens the lifecycle for one statement: the caller must invoke
	// the returned stop before reading the next line.
	queryCtx := func() (context.Context, context.CancelFunc) {
		ctx, cancel := context.WithCancel(context.Background())
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(context.Background(), *timeout)
		}
		ses.setInflight(cancel)
		stop := func() {
			ses.setInflight(nil)
			cancel()
		}
		return ctx, stop
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	prepared := map[string]*partopt.Stmt{}
	for {
		fmt.Printf("mppsim(%s)> ", eng.Optimizer())
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return
		case line == `\tables`:
			for _, name := range eng.TableNames() {
				n, _ := eng.NumPartitions(name)
				fmt.Printf("  %-20s %3d partition(s)\n", name, n)
			}
		case line == `\metrics`:
			fmt.Print(eng.Metrics())
		case line == `\segments`:
			health, ok := eng.SegmentHealth()
			if !ok {
				fmt.Println("fault tolerance is disabled (start with --fts)")
				continue
			}
			fmt.Printf("%d segment(s), %d failover(s)\n", len(health), eng.SegmentFailovers())
			for _, sh := range health {
				fmt.Printf("  seg %d: primary=replica %d", sh.Seg, sh.Primary)
				for r, rep := range sh.Replicas {
					marker := ""
					if rep.Primary {
						marker = "*"
					}
					fmt.Printf("  [%d%s %s]", r, marker, rep.State)
				}
				fmt.Println()
			}
		case strings.HasPrefix(line, `\kill`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\kill`))
			seg, err := strconv.Atoi(arg)
			if err != nil {
				fmt.Println("usage: \\kill <segment>")
				continue
			}
			if err := eng.KillSegment(seg); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("killed segment %d's acting primary; the FTS will detect and fail over\n", seg)
		case strings.HasPrefix(line, `\revive`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\revive`))
			seg, err := strconv.Atoi(arg)
			if err != nil {
				fmt.Println("usage: \\revive <segment>")
				continue
			}
			if err := eng.ReviveSegment(seg); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("revived segment %d's dead replica(s); resynced from the survivor\n", seg)
		case line == `\cache`:
			st := eng.PlanCacheStats()
			fmt.Printf("plan cache: %d/%d entries, epoch %d\n", st.Entries, st.Capacity, st.Epoch)
			fmt.Printf("  hits %d, misses %d, evictions %d, invalidations %d\n",
				st.Hits, st.Misses, st.Evictions, st.Invalidations)
			fmt.Printf("  optimizer invocations: %d\n", st.Optimizations)
			ost := eng.OIDCacheStats()
			fmt.Printf("OID cache: %d/%d entries, epoch %d\n", ost.Entries, ost.Capacity, ost.Epoch)
			fmt.Printf("  hits %d, misses %d, evictions %d, invalidations %d\n",
				ost.Hits, ost.Misses, ost.Evictions, ost.Invalidations)
		case strings.HasPrefix(line, `\optimizer`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\optimizer`))
			switch arg {
			case "orca":
				eng.SetOptimizer(partopt.Orca)
			case "planner":
				eng.SetOptimizer(partopt.LegacyPlanner)
			default:
				fmt.Println("usage: \\optimizer orca|planner")
			}
		case strings.HasPrefix(line, `\index`):
			parts := strings.Fields(strings.TrimPrefix(line, `\index`))
			if len(parts) != 2 {
				fmt.Println("usage: \\index <table> <column>")
				continue
			}
			name := parts[0] + "_" + parts[1] + "_idx"
			if err := eng.CreateIndex(name, parts[0], parts[1]); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("created index %s on %s(%s)\n", name, parts[0], parts[1])
		case strings.HasPrefix(line, `\selection`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\selection`))
			switch arg {
			case "on":
				eng.SetPartitionSelection(true)
			case "off":
				eng.SetPartitionSelection(false)
			default:
				fmt.Println("usage: \\selection on|off")
			}
		case strings.HasPrefix(strings.ToUpper(line), "EXPLAIN ANALYZE "):
			ctx, stop := queryCtx()
			start := time.Now()
			out, err := eng.ExplainAnalyzeCtx(ctx, line[len("EXPLAIN ANALYZE "):])
			stop()
			if err != nil {
				if out != "" {
					fmt.Print(out) // partial actuals gathered before the abort
				}
				reportQueryError(err, nil, time.Since(start))
				continue
			}
			fmt.Print(out)
		case strings.HasPrefix(strings.ToUpper(line), "EXPLAIN "):
			out, err := eng.Explain(line[len("EXPLAIN "):])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(out)
		case strings.HasPrefix(strings.ToUpper(line), "PREPARE "):
			rest := line[len("PREPARE "):]
			asIdx := strings.Index(strings.ToUpper(rest), " AS ")
			if asIdx < 0 {
				fmt.Println("usage: PREPARE <name> AS <statement>")
				continue
			}
			name := strings.TrimSpace(rest[:asIdx])
			st, err := eng.Prepare(strings.TrimSpace(rest[asIdx+len(" AS "):]))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			prepared[name] = st
			fmt.Printf("prepared %s: %s\n", name, st.Fingerprint())
		case strings.HasPrefix(strings.ToUpper(line), "EXECUTE "):
			fields := strings.SplitN(strings.TrimSpace(line[len("EXECUTE "):]), " ", 2)
			st, ok := prepared[fields[0]]
			if !ok {
				fmt.Printf("error: no prepared statement %q (use PREPARE <name> AS ...)\n", fields[0])
				continue
			}
			var args []partopt.Value
			if len(fields) == 2 {
				var err error
				if args, err = parseExecArgs(fields[1]); err != nil {
					fmt.Println("error:", err)
					continue
				}
			}
			ctx, stop := queryCtx()
			runPrepared(ctx, eng, st, args, *explainAnalyze)
			stop()
		case strings.HasPrefix(strings.ToUpper(line), "UPDATE"),
			strings.HasPrefix(strings.ToUpper(line), "DELETE"),
			strings.HasPrefix(strings.ToUpper(line), "INSERT"):
			verb := strings.ToUpper(strings.Fields(line)[0])
			ctx, stop := queryCtx()
			start := time.Now()
			n, err := eng.ExecCtx(ctx, line)
			stop()
			if err != nil {
				reportQueryError(err, nil, time.Since(start))
				continue
			}
			fmt.Printf("%s %d  (%v)\n", verb, n, time.Since(start).Round(time.Microsecond))
		default:
			ctx, stop := queryCtx()
			runSelect(ctx, eng, line, *explainAnalyze)
			stop()
		}
	}
}

// reportQueryError prints a failed statement's outcome. SIGINT cancellation
// and --timeout expiry report the same partial-statistics block — the work
// the cluster did before the abort — and terminate the shell with distinct
// exit codes (130 for interrupt, 124 for timeout, matching the timeout(1)
// convention). Other errors keep the shell running.
func reportQueryError(err error, partial *partopt.Rows, elapsed time.Duration) {
	exit := 0
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("error: query timed out after %v\n", elapsed.Round(time.Millisecond))
		exit = 124
	case errors.Is(err, context.Canceled):
		fmt.Printf("canceled after %v\n", elapsed.Round(time.Millisecond))
		exit = 130
	default:
		fmt.Println("error:", err)
	}
	if partial != nil {
		fmt.Printf("partial: %d rows scanned, %d rows moved", partial.RowsScanned, partial.RowsMoved)
		for table, parts := range partial.PartsScanned {
			fmt.Printf(", %s: %d parts", table, parts)
		}
		fmt.Println()
	}
	if exit != 0 {
		shellExit(exit)
	}
}

func runSelect(ctx context.Context, eng *partopt.Engine, query string, explainAnalyze bool) {
	start := time.Now()
	rows, err := eng.QueryCtx(ctx, query)
	if err != nil {
		if explainAnalyze && rows != nil && rows.ExplainAnalyze != "" {
			fmt.Print(rows.ExplainAnalyze) // partial actuals before the abort
		}
		reportQueryError(err, rows, time.Since(start))
		return
	}
	printRows(eng, rows, time.Since(start), explainAnalyze)
}

// runPrepared executes a named prepared statement, dispatching SELECTs and
// DML on the statement's own report.
func runPrepared(ctx context.Context, eng *partopt.Engine, st *partopt.Stmt, args []partopt.Value, explainAnalyze bool) {
	start := time.Now()
	rows, err := st.QueryCtx(ctx, args...)
	if err != nil && strings.Contains(err.Error(), "use Exec") {
		n, err := st.ExecCtx(ctx, args...)
		if err != nil {
			reportQueryError(err, nil, time.Since(start))
			return
		}
		fmt.Printf("EXECUTE %d  (%v)\n", n, time.Since(start).Round(time.Microsecond))
		return
	}
	if err != nil {
		if explainAnalyze && rows != nil && rows.ExplainAnalyze != "" {
			fmt.Print(rows.ExplainAnalyze)
		}
		reportQueryError(err, rows, time.Since(start))
		return
	}
	printRows(eng, rows, time.Since(start), explainAnalyze)
}

// parseExecArgs parses EXECUTE arguments: integers, floats, 'strings' and
// YYYY-MM-DD dates, separated by commas and/or spaces.
func parseExecArgs(s string) ([]partopt.Value, error) {
	var out []partopt.Value
	for _, tok := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		switch {
		case strings.HasPrefix(tok, "'") && strings.HasSuffix(tok, "'") && len(tok) >= 2:
			out = append(out, partopt.String(tok[1:len(tok)-1]))
		case len(tok) == 10 && tok[4] == '-' && tok[7] == '-':
			v, err := partopt.ParseDate(tok)
			if err != nil {
				return nil, fmt.Errorf("invalid date %q: %v", tok, err)
			}
			out = append(out, v)
		case strings.ContainsAny(tok, ".eE") && !strings.HasPrefix(tok, "'"):
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("invalid argument %q", tok)
			}
			out = append(out, partopt.Float(f))
		default:
			n, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("invalid argument %q", tok)
			}
			out = append(out, partopt.Int(n))
		}
	}
	return out, nil
}

func printRows(eng *partopt.Engine, rows *partopt.Rows, elapsed time.Duration, explainAnalyze bool) {
	fmt.Println(strings.Join(rows.Columns, " | "))
	fmt.Println(strings.Repeat("-", 8*len(rows.Columns)+8))
	const maxShow = 20
	for i, r := range rows.Data {
		if i >= maxShow {
			fmt.Printf("... (%d more rows)\n", len(rows.Data)-maxShow)
			break
		}
		cells := make([]string, len(r))
		for c, v := range r {
			cells[c] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows, %v, plan %dB", len(rows.Data), elapsed.Round(time.Microsecond), rows.PlanSize)
	for table, parts := range rows.PartsScanned {
		total, _ := eng.NumPartitions(table)
		fmt.Printf(", %s: %d/%d parts", table, parts, total)
	}
	if rows.SpilledBytes > 0 {
		fmt.Printf(", spilled %s in %d part(s)", fmtSize(rows.SpilledBytes), rows.SpillParts)
	}
	fmt.Println(")")
	if explainAnalyze {
		fmt.Print(rows.ExplainAnalyze)
	}
}

// parseSize parses a byte count with an optional K/M/G suffix (binary
// multiples), e.g. "64M".
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q (use e.g. 512K, 64M, 1G)", s)
	}
	return n * mult, nil
}

func fmtSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mppsim:", err)
		os.Exit(1)
	}
}
