package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildMppsim compiles the mppsim binary once per test binary run.
func buildMppsim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mppsim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSignalExitsGracefully locks in the contract that SIGTERM and SIGINT
// are handled identically: an interrupt at the prompt prints "interrupted"
// and exits 130, the same code the timeout(1) convention assigns to
// SIGINT. Containerized runs rely on SIGTERM taking this path instead of
// the Go runtime's default kill.
func TestSignalExitsGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a child process")
	}
	bin := buildMppsim(t)
	for _, tc := range []struct {
		name string
		sig  os.Signal
	}{
		{"SIGTERM", syscall.SIGTERM},
		{"SIGINT", os.Interrupt},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, "-sales", "1")
			stdin, err := cmd.StdinPipe()
			if err != nil {
				t.Fatal(err)
			}
			defer stdin.Close()
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			cmd.Stderr = cmd.Stdout
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			defer cmd.Process.Kill()

			// Wait for the shell to reach its prompt, then signal it.
			outCh := make(chan string, 1)
			go func() {
				var sb strings.Builder
				br := bufio.NewReader(stdout)
				readyAt := false
				for {
					chunk := make([]byte, 4096)
					n, err := br.Read(chunk)
					sb.Write(chunk[:n])
					if !readyAt && strings.Contains(sb.String(), "ready.") {
						readyAt = true
						cmd.Process.Signal(tc.sig)
					}
					if err != nil {
						outCh <- sb.String()
						return
					}
				}
			}()

			waitCh := make(chan error, 1)
			go func() { waitCh <- cmd.Wait() }()
			select {
			case err := <-waitCh:
				ee, ok := err.(*exec.ExitError)
				if !ok {
					t.Fatalf("want exit error with code 130, got %v", err)
				}
				if code := ee.ExitCode(); code != 130 {
					t.Fatalf("exit code = %d, want 130", code)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("mppsim did not exit after signal")
			}
			var out string
			select {
			case out = <-outCh:
			case <-time.After(5 * time.Second):
				t.Fatal("stdout reader did not finish")
			}
			if !strings.Contains(out, "interrupted") {
				t.Fatalf("output missing %q:\n%s", "interrupted", out)
			}
		})
	}
}
