package main

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"partopt/internal/server"
)

// End-to-end suite for the daemon binary: boot, concurrent clients sharing
// the plan cache through prepared statements, the doctor over HTTP, a
// SIGTERM drain under load with the /healthz flip, and a doctor failure on
// an induced spill storm. Each test boots its own mppd on ephemeral ports.

func buildMppd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mppd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// mppd is one running daemon under test.
type mppd struct {
	cmd      *exec.Cmd
	addr     string // TCP line-protocol address
	httpAddr string
	waitCh   chan error
	mu       sync.Mutex
	log      strings.Builder
}

func (m *mppd) logs() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.log.String()
}

// startMppd boots the daemon and waits for its "serving on" line to learn
// the ephemeral addresses.
func startMppd(t *testing.T, bin string, extra ...string) *mppd {
	t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0", "-sales", "2"}, extra...)
	m := &mppd{cmd: exec.Command(bin, args...)}
	stderr, err := m.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.cmd.Process.Kill() })

	addrCh := make(chan [2]string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			m.mu.Lock()
			m.log.WriteString(line + "\n")
			m.mu.Unlock()
			if i := strings.Index(line, "serving on "); i >= 0 {
				rest := line[i+len("serving on "):] // "<addr> (http <addr>)"
				tcp, httpPart, ok := strings.Cut(rest, " (http ")
				if ok {
					select {
					case addrCh <- [2]string{tcp, strings.TrimSuffix(httpPart, ")")}:
					default:
					}
				}
			}
		}
	}()
	m.waitCh = make(chan error, 1)
	go func() { m.waitCh <- m.cmd.Wait() }()

	select {
	case addrs := <-addrCh:
		m.addr, m.httpAddr = addrs[0], addrs[1]
	case err := <-m.waitCh:
		t.Fatalf("mppd exited before serving: %v\n%s", err, m.logs())
	case <-time.After(60 * time.Second):
		t.Fatalf("mppd never announced its address\n%s", m.logs())
	}
	return m
}

// exitCode waits for the daemon to exit and returns its code.
func (m *mppd) exitCode(t *testing.T, timeout time.Duration) int {
	t.Helper()
	select {
	case err := <-m.waitCh:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("mppd wait: %v", err)
	case <-time.After(timeout):
		t.Fatalf("mppd did not exit\n%s", m.logs())
	}
	return -1
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	return resp.StatusCode, string(buf[:n])
}

func TestMppdSmokeConcurrentClientsAndDoctor(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the daemon binary")
	}
	bin := buildMppd(t)
	m := startMppd(t, bin)

	if code, body := httpGet(t, "http://"+m.httpAddr+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := httpGet(t, "http://"+m.httpAddr+"/metrics"); code != 200 || !strings.Contains(body, "server_sessions_total") {
		t.Fatalf("/metrics = %d (missing server counters)", code)
	}

	// Concurrent clients preparing the same statement must share one plan:
	// identical fingerprints across sessions.
	const clients = 4
	fps := make([]string, clients)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := server.Dial(m.addr, 30*time.Second)
			if err != nil {
				errCh <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			defer c.Close()
			r, err := c.Send("PREPARE q AS SELECT count(*) FROM store_sales WHERE date_id = $1")
			if err != nil || r.IsErr() || len(r.Lines) == 0 {
				errCh <- fmt.Errorf("client %d PREPARE: %v %v", i, err, r)
				return
			}
			fps[i] = r.Lines[0]
			for k := 0; k < 5; k++ {
				r, err := c.Send(fmt.Sprintf("EXECUTE q %d", k+1))
				if err != nil || r.IsErr() {
					errCh <- fmt.Errorf("client %d EXECUTE: %v %v", i, err, r)
					return
				}
			}
			errCh <- nil
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < clients; i++ {
		if fps[i] != fps[0] {
			t.Fatalf("client %d fingerprint %q != client 0 %q (plan cache not shared)", i, fps[i], fps[0])
		}
	}

	// The doctor suite over HTTP passes on a healthy daemon...
	out, err := exec.Command(bin, "doctor", "-http", "http://"+m.httpAddr, "run").CombinedOutput()
	if err != nil {
		t.Fatalf("doctor run failed on a healthy server: %v\n%s", err, out)
	}
	for _, check := range []string{"cache-hit-ratio", "spill-volume", "partition-skew"} {
		if !strings.Contains(string(out), check) {
			t.Fatalf("doctor output lacks %s:\n%s", check, out)
		}
	}
	// ...and explain lists the registry without needing a server.
	out, err = exec.Command(bin, "doctor", "explain").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "goroutine-growth") {
		t.Fatalf("doctor explain: %v\n%s", err, out)
	}

	// Unloaded SIGTERM: clean exit 0.
	m.cmd.Process.Signal(syscall.SIGTERM)
	if code := m.exitCode(t, 30*time.Second); code != 0 {
		t.Fatalf("exit code after idle SIGTERM = %d, want 0\n%s", code, m.logs())
	}
}

// The headline drain scenario: SIGTERM arrives while a (chaos-slowed)
// query is in flight. /healthz flips to 503, the query still completes
// with its full answer, and the daemon exits 0 — zero dropped queries.
func TestMppdSigtermDrainsInflightQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the daemon binary")
	}
	bin := buildMppd(t)
	m := startMppd(t, bin, "-chaos", "exec.slice.start:delay:1s", "-drain-timeout", "60s")

	c, err := server.Dial(m.addr, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	type res struct {
		r   *server.Response
		err error
	}
	resCh := make(chan res, 1)
	go func() {
		r, err := c.Send("SELECT count(*) FROM store_sales")
		resCh <- res{r, err}
	}()

	// The query is in flight once the inflight gauge says so.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := httpGet(t, "http://"+m.httpAddr+"/statz")
		if strings.Contains(body, `"inflight_queries": 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never showed in flight\n%s", m.logs())
		}
		time.Sleep(10 * time.Millisecond)
	}

	m.cmd.Process.Signal(syscall.SIGTERM)

	// The health endpoint must flip while the query drains.
	deadline = time.Now().Add(30 * time.Second)
	for {
		code, _ := httpGet(t, "http://"+m.httpAddr+"/healthz")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz never flipped to 503 during drain\n%s", m.logs())
		}
		time.Sleep(5 * time.Millisecond)
	}

	got := <-resCh
	if got.err != nil {
		t.Fatalf("in-flight query dropped during drain: %v\n%s", got.err, m.logs())
	}
	if got.r.IsErr() {
		t.Fatalf("in-flight query failed during drain: %q\n%s", got.r.Header, m.logs())
	}
	if rows := got.r.DataRows(); len(rows) != 1 {
		t.Fatalf("in-flight query returned %d rows, want 1", len(rows))
	}

	if code := m.exitCode(t, 60*time.Second); code != 0 {
		t.Fatalf("exit code after drain = %d, want 0 (clean drain)\n%s", code, m.logs())
	}
}

// Doctor non-zero exit on an induced unhealthy condition: starve work_mem,
// run a spilling aggregate, and judge spill volume against a 1-byte
// ceiling.
func TestMppdDoctorFailsOnSpillStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the daemon binary")
	}
	bin := buildMppd(t)
	m := startMppd(t, bin, "-work-mem", "512")

	c, err := server.Dial(m.addr, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := c.Send("SELECT date_id, count(*) AS n, sum(amount) AS total FROM store_sales GROUP BY date_id")
	if err != nil || r.IsErr() {
		t.Fatalf("spilling query: %v %v", err, r)
	}

	// Default threshold (1G): healthy.
	out, err := exec.Command(bin, "doctor", "-http", "http://"+m.httpAddr, "run", "-only", "spill-volume").CombinedOutput()
	if err != nil {
		t.Fatalf("doctor under default threshold failed: %v\n%s", err, out)
	}
	// 1-byte ceiling: the storm trips it, exit code 1.
	cmd := exec.Command(bin, "doctor", "-http", "http://"+m.httpAddr, "-max-spill-bytes", "1", "run", "-only", "spill-volume")
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("doctor passed a spill storm:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("doctor exit = %v, want code 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "FAIL") {
		t.Fatalf("doctor failure output lacks FAIL:\n%s", out)
	}

	m.cmd.Process.Signal(syscall.SIGTERM)
	if code := m.exitCode(t, 30*time.Second); code != 0 {
		t.Fatalf("exit after SIGTERM = %d\n%s", code, m.logs())
	}
}
