// Command mppd is the MPP coordinator daemon: the partopt engine behind a
// multi-client TCP line-protocol front end with a hardened connection
// lifecycle, plus HTTP observability endpoints and a doctor subcommand.
//
//	$ mppd -listen :7788 -http :7789 -max-concurrent 8 -mem-budget 256M
//	$ mppd doctor -http http://127.0.0.1:7789 run
//	$ mppd doctor -http http://127.0.0.1:7789 run -only partition-skew
//	$ mppd doctor explain
//
// The server loads the paper's star schema on boot (like mppsim) so a
// fresh daemon is immediately queryable; point clients at the TCP port
// and speak the line protocol documented in internal/server.
//
// Lifecycle: SIGTERM and SIGINT start a graceful drain — /healthz flips
// to 503, new connections and statements are refused with a retryable
// error, in-flight queries get -drain-timeout to finish, stragglers are
// cancelled with partial statistics. A second signal aborts immediately.
// Exit code 0 means every in-flight query completed; 1 means the drain
// deadline forced cancellations.
//
// `mppd doctor` runs the read-only health-check suite against a live
// server's /statz endpoint: `run` executes every check (`-only <name>`
// narrows to one) and exits non-zero when any fails; `explain` lists the
// registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"partopt"
	"partopt/internal/fault"
	"partopt/internal/server"
	"partopt/internal/server/doctor"
	"partopt/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "doctor" {
		os.Exit(doctorMain(os.Args[2:]))
	}
	os.Exit(serveMain(os.Args[1:]))
}

func serveMain(args []string) int {
	fs := flag.NewFlagSet("mppd", flag.ExitOnError)
	listen := fs.String("listen", ":7788", "TCP listen address for the line protocol")
	httpAddr := fs.String("http", ":7789", "HTTP listen address for /healthz, /readyz, /metrics, /statz (empty disables)")
	segments := fs.Int("segments", 4, "number of cluster segments")
	sales := fs.Int("sales", 20, "star-schema sales rows per day loaded on boot")
	maxSessions := fs.Int("max-sessions", server.DefaultMaxSessions, "connection cap; beyond it connections are refused with TOO_BUSY")
	maxQueued := fs.Int("max-queued", server.DefaultMaxQueued, "admission-queue depth that sheds new statements with TOO_BUSY (-1 disables)")
	idleTimeout := fs.Duration("idle-timeout", server.DefaultIdleTimeout, "close sessions idle this long")
	readTimeout := fs.Duration("read-timeout", server.DefaultReadTimeout, "deadline for completing a started statement line")
	writeTimeout := fs.Duration("write-timeout", server.DefaultWriteTimeout, "deadline for writing one response")
	queryTimeout := fs.Duration("query-timeout", 0, "per-query deadline (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", server.DefaultDrainTimeout, "grace for in-flight queries on SIGTERM/SIGINT")
	memBudget := fs.String("mem-budget", "", "total executor memory budget, e.g. 256M (empty = unlimited)")
	workMem := fs.String("work-mem", "", "per-query spill threshold, e.g. 1M (empty = fair share of the budget)")
	maxConcurrent := fs.Int("max-concurrent", 0, "max concurrently executing queries (0 = unbounded; required for admission-based shedding)")
	planCache := fs.Int("plan-cache", partopt.DefaultPlanCacheCapacity, "plan cache capacity in entries (0 disables caching)")
	chaos := fs.String("chaos", "", "arm a fault rule for resilience drills: point:kind[:delay], e.g. exec.slice.start:delay:500ms")
	ftsOn := fs.Bool("fts", false, "enable segment fault tolerance: mirrored segments, health probing, failover")
	ftsProbe := fs.Duration("fts-probe-interval", partopt.DefaultFTConfig().ProbeInterval, "FTS health probe period (0 disables the probe loop)")
	retryAttempts := fs.Int("retry-attempts", 0, "max attempts for read-only queries that fail transiently (0 keeps the FTS default / no retry)")
	retryBackoff := fs.Duration("retry-backoff", 2*time.Millisecond, "backoff before a retry attempt, doubled per retry")
	fs.Parse(args)

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf

	eng, err := partopt.New(*segments)
	if err != nil {
		logf("mppd: %v", err)
		return 1
	}
	if *planCache != partopt.DefaultPlanCacheCapacity {
		eng.SetPlanCacheCapacity(*planCache)
	}
	if *memBudget != "" {
		n, err := parseSize(*memBudget)
		if err != nil {
			logf("mppd: %v", err)
			return 1
		}
		eng.SetMemBudget(n)
	}
	if *workMem != "" {
		n, err := parseSize(*workMem)
		if err != nil {
			logf("mppd: %v", err)
			return 1
		}
		eng.SetWorkMem(n)
	}
	if *maxConcurrent > 0 {
		eng.SetMaxConcurrent(*maxConcurrent)
	}
	if *retryAttempts > 0 {
		eng.SetRetryPolicy(*retryAttempts, *retryBackoff)
	}

	cfg := workload.DefaultStarConfig()
	cfg.SalesPerDay = *sales
	logf("mppd: loading star schema (%d segments, %d months per fact)...", *segments, cfg.Months)
	if err := workload.BuildStar(eng, cfg); err != nil {
		logf("mppd: loading star schema: %v", err)
		return 1
	}

	var inj *fault.Injector
	if *chaos != "" {
		var err error
		if inj, err = parseChaos(*chaos); err != nil {
			logf("mppd: %v", err)
			return 1
		}
		eng.SetFaults(inj)
		logf("mppd: chaos drill armed: %s", *chaos)
	}

	// Mirrors are enabled after the bulk load (cloning the loaded heaps is
	// cheaper than dual-applying every boot insert) and after chaos arming
	// (so seg.probe rules see the probe loop from its first tick).
	if *ftsOn {
		eng.EnableFaultTolerance(partopt.FTConfig{ProbeInterval: *ftsProbe, DownAfter: partopt.DefaultFTConfig().DownAfter})
		if *retryAttempts > 0 {
			eng.SetRetryPolicy(*retryAttempts, *retryBackoff)
		}
		defer eng.StopFTS()
		logf("mppd: fault tolerance enabled (probe every %v)", *ftsProbe)
	}

	srv := server.New(eng, server.Config{
		Addr:         *listen,
		HTTPAddr:     *httpAddr,
		MaxSessions:  *maxSessions,
		MaxQueued:    *maxQueued,
		IdleTimeout:  *idleTimeout,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		QueryTimeout: *queryTimeout,
		Faults:       inj,
		Logf:         logf,
	})
	if err := srv.Start(); err != nil {
		logf("mppd: %v", err)
		return 1
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	logf("mppd: %v: draining (deadline %v; signal again to abort)", sig, *drainTimeout)
	go func() {
		<-sigCh
		logf("mppd: second signal, aborting")
		srv.Close()
		os.Exit(1)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logf("mppd: drain deadline exceeded, in-flight queries were cancelled")
		return 1
	}
	return 0
}

func doctorMain(args []string) int {
	fs := flag.NewFlagSet("mppd doctor", flag.ExitOnError)
	base := fs.String("http", "http://127.0.0.1:7789", "base URL of the server's HTTP endpoint")
	checkTimeout := fs.Duration("check-timeout", 5*time.Second, "per-check deadline")
	interval := fs.Duration("interval", 250*time.Millisecond, "sampling interval of the growth checks")
	minHitRatio := fs.Float64("min-hit-ratio", 0.5, "cache-hit-ratio: minimum hit ratio once enough lookups exist")
	minCacheSamples := fs.Int64("min-cache-samples", 50, "cache-hit-ratio: lookups required before judging")
	maxSpill := fs.String("max-spill-bytes", "1G", "spill-volume: cumulative spill ceiling, e.g. 512M")
	maxWaiting := fs.Int("max-waiting", 8, "admission-queue: waiting queries that mean saturation")
	maxSkew := fs.Float64("max-skew", 4.0, "partition-skew: max leaf rows over mean leaf rows")
	minSkewRows := fs.Int64("min-skew-rows", 1000, "partition-skew: table rows required before judging")
	fs.Parse(args)

	sub := fs.Arg(0)
	switch sub {
	case "explain":
		fmt.Print(doctor.Explain())
		return 0
	case "run":
	case "":
		fmt.Fprintln(os.Stderr, "usage: mppd doctor [flags] run [-only <check>] | explain")
		return 2
	default:
		fmt.Fprintf(os.Stderr, "mppd doctor: unknown subcommand %q (want run or explain)\n", sub)
		return 2
	}

	runFS := flag.NewFlagSet("mppd doctor run", flag.ExitOnError)
	only := runFS.String("only", "", "run just this check")
	runFS.Parse(fs.Args()[1:])

	th := doctor.DefaultThresholds()
	th.CheckTimeout = *checkTimeout
	th.GrowthInterval = *interval
	th.MinCacheHitRatio = *minHitRatio
	th.MinCacheSamples = *minCacheSamples
	th.MaxAdmissionWaiting = *maxWaiting
	th.MaxSkewRatio = *maxSkew
	th.MinSkewRows = *minSkewRows
	spill, err := parseSize(*maxSpill)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mppd doctor: %v\n", err)
		return 2
	}
	th.MaxSpillBytes = spill

	results, allOK, err := doctor.RunAll(context.Background(), doctor.HTTPSource{Base: *base}, th, *only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mppd doctor: %v\n", err)
		return 2
	}
	for _, r := range results {
		fmt.Println(r)
	}
	if !allOK {
		return 1
	}
	return 0
}

// parseChaos arms one always-firing fault rule from a point:kind[:delay]
// spec — the resilience-drill hook: slow every slice start to rehearse a
// drain, refuse every Nth connection, and so on. The rule matches every
// segment/session and fires on every hit.
func parseChaos(spec string) (*fault.Injector, error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) < 2 {
		return nil, fmt.Errorf("invalid -chaos %q (want point:kind[:delay])", spec)
	}
	var point fault.Point
	for _, p := range fault.Points() {
		if string(p) == parts[0] {
			point = p
		}
	}
	if point == "" {
		return nil, fmt.Errorf("unknown fault point %q (have %v)", parts[0], fault.Points())
	}
	kinds := map[string]fault.Kind{
		"error":     fault.KindError,
		"transient": fault.KindTransient,
		"drop":      fault.KindDrop,
		"delay":     fault.KindDelay,
		"panic":     fault.KindPanic,
	}
	kind, ok := kinds[parts[1]]
	if !ok {
		return nil, fmt.Errorf("unknown fault kind %q (want error|transient|drop|delay|panic)", parts[1])
	}
	rule := fault.Rule{Point: point, Kind: kind, Seg: fault.AnySeg, Prob: 1}
	if len(parts) == 3 {
		d, err := time.ParseDuration(parts[2])
		if err != nil {
			return nil, fmt.Errorf("invalid -chaos delay %q: %v", parts[2], err)
		}
		rule.Delay = d
	}
	inj := fault.NewInjector(1)
	inj.Arm(rule)
	return inj, nil
}

// parseSize parses a byte count with an optional K/M/G suffix (binary
// multiples), e.g. "64M".
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q (use e.g. 512K, 64M, 1G)", s)
	}
	return n * mult, nil
}
