package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"partopt/internal/bench"
)

// benchRecord is one metric of one experiment, in the stable schema the
// perf-trajectory tooling consumes: {experiment, metric, value, unit}.
// BENCH_<experiment>.json files hold a flat array of these records, so a
// later PR can diff any metric against any earlier commit's file.
type benchRecord struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit"`
}

// writeBenchJSON writes one experiment's records to BENCH_<name>.json in
// dir. Records are written sorted exactly as produced (the producers emit a
// stable order), and the file ends with a newline so diffs stay clean.
func writeBenchJSON(dir, name string, recs []benchRecord) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", name))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d metrics)\n", path, len(recs))
	return nil
}

// table2Records flattens the Table 2 rows: elapsed and throughput per
// partitioning scheme, plus the overhead percentage the paper reports. The
// @Nparts suffix keys each scheme, so "elapsed_ns@1parts" is the
// unpartitioned full-scan baseline the acceptance criteria track.
func table2Records(rows []bench.Table2Row, scanRows int) []benchRecord {
	var out []benchRecord
	for _, r := range rows {
		key := fmt.Sprintf("@%dparts", r.Parts)
		out = append(out,
			benchRecord{"table2", "elapsed_ns" + key, float64(r.Elapsed.Nanoseconds()), "ns"},
			benchRecord{"table2", "rows_per_sec" + key, rowsPerSec(scanRows, r.Elapsed), "rows/s"},
		)
		if r.Parts > 1 {
			out = append(out, benchRecord{"table2", "overhead_pct" + key, r.OverheadPct, "%"})
		}
	}
	return out
}

func rowsPerSec(rows int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(rows) / d.Seconds()
}

// table3Records flattens the workload classification percentages.
func table3Records(stats []bench.QueryStat) []benchRecord {
	counts := map[bench.Category]int{}
	for _, s := range stats {
		counts[bench.Classify(s)]++
	}
	total := float64(len(stats))
	metric := map[bench.Category]string{
		bench.OrcaOnly:    "orca_only_pct",
		bench.OrcaMore:    "orca_more_pct",
		bench.Equal:       "equal_pct",
		bench.OrcaFewer:   "orca_fewer_pct",
		bench.PlannerOnly: "planner_only_pct",
	}
	var out []benchRecord
	for _, c := range bench.Categories {
		out = append(out, benchRecord{"table3", metric[c], 100 * float64(counts[c]) / total, "%"})
	}
	return out
}

// fig16Records flattens scanned-partition totals per fact table.
func fig16Records(rows []bench.Figure16Row) []benchRecord {
	var out []benchRecord
	for _, r := range rows {
		out = append(out,
			benchRecord{"fig16", "planner_parts@" + r.Table, float64(r.PlannerParts), "parts"},
			benchRecord{"fig16", "orca_parts@" + r.Table, float64(r.OrcaParts), "parts"},
		)
	}
	return out
}

// fig17Records flattens the per-query selection-on/off improvement.
func fig17Records(rows []bench.Figure17Row) []benchRecord {
	var out []benchRecord
	for _, r := range rows {
		out = append(out,
			benchRecord{"fig17", "improvement_pct@" + r.Name, r.ImprovementPct, "%"},
			benchRecord{"fig17", "elapsed_on_ns@" + r.Name, float64(r.On.Nanoseconds()), "ns"},
		)
	}
	return out
}

// plancacheRecords flattens the plan-cache experiment: average point-query
// latency with the cache off and on, the speedup (the acceptance criterion
// tracks speedup_x >= 2), and the optimizer-invocation counts that prove
// hits skip optimization.
func plancacheRecords(r *bench.PlanCacheResult) []benchRecord {
	return []benchRecord{
		{"plancache", "cold_ns", float64(r.ColdNs.Nanoseconds()), "ns"},
		{"plancache", "cached_ns", float64(r.CachedNs.Nanoseconds()), "ns"},
		{"plancache", "speedup_x", r.Speedup, "x"},
		{"plancache", "cold_optimizations", float64(r.ColdOpt), "calls"},
		{"plancache", "cached_optimizations", float64(r.CachedOpt), "calls"},
		{"plancache", "cache_hits", float64(r.Hits), "hits"},
	}
}

// outerdpeRecords flattens the outer-join elimination experiment: the
// partitions scanned with selection on vs off (the acceptance criterion
// tracks scan_reduction_x >= 2) and the OID-cache proof that warm sweeps
// perform zero descriptor traversals (warm_traversals == 0).
func outerdpeRecords(r *bench.OuterDPEResult) []benchRecord {
	return []benchRecord{
		{"outerdpe", "parts_selection_on", float64(r.SelParts), "parts"},
		{"outerdpe", "parts_selection_off", float64(r.NoSelParts), "parts"},
		{"outerdpe", "scan_reduction_x", r.Ratio, "x"},
		{"outerdpe", "cold_traversals", float64(r.ColdMisses), "calls"},
		{"outerdpe", "warm_hits", float64(r.WarmHits), "hits"},
		{"outerdpe", "warm_traversals", float64(r.WarmMisses), "calls"},
	}
}

// colscanRecords flattens the vectorized-kernel grid: throughput and
// elapsed time per (kernel × partition count), keyed like table2's records
// so "scan_rows_per_sec@1parts" reads as the columnar full-scan headline.
func colscanRecords(rows []bench.ColScanRow) []benchRecord {
	var out []benchRecord
	for _, r := range rows {
		key := fmt.Sprintf("@%dparts", r.Parts)
		out = append(out,
			benchRecord{"colscan", r.Kernel + "_rows_per_sec" + key, r.RowsPerSec, "rows/s"},
			benchRecord{"colscan", r.Kernel + "_elapsed_ns" + key, float64(r.Elapsed.Nanoseconds()), "ns"},
		)
	}
	return out
}

// paroptRecords flattens the parallel-optimization grid: best memo-search
// latency per (tables × workers) cell plus memo size, the headline speedup
// at 8 workers, and the CPU count the run had — the speedup is only
// meaningful relative to it (a single-core host cannot beat 1.0x).
func paroptRecords(r *bench.ParoptResult) []benchRecord {
	out := []benchRecord{
		{"paropt", "num_cpu", float64(r.NumCPU), "cpus"},
		{"paropt", fmt.Sprintf("speedup_w8@%dtables", r.SpeedupRef), r.SpeedupAt8, "x"},
	}
	for _, c := range r.Cells {
		key := fmt.Sprintf("@%dtables_w%d", c.Tables, c.Workers)
		out = append(out, benchRecord{"paropt", "optimize_ns" + key, float64(c.Best.Nanoseconds()), "ns"})
		if c.Workers == 1 {
			out = append(out, benchRecord{"paropt", fmt.Sprintf("groups@%dtables", c.Tables), float64(c.Groups), "groups"})
		}
	}
	return out
}

// fig18Records flattens one plan-size curve (a, b or c).
func fig18Records(name string, rows []bench.SizeRow) []benchRecord {
	var out []benchRecord
	for _, r := range rows {
		key := fmt.Sprintf("@%d", r.X)
		out = append(out,
			benchRecord{name, "planner_bytes" + key, float64(r.PlannerBytes), "bytes"},
			benchRecord{name, "orca_bytes" + key, float64(r.OrcaBytes), "bytes"},
		)
	}
	return out
}
