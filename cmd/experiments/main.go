// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's layout:
//
//	Table 2      — full-scan overhead of partitioning lineitem
//	Table 3      — workload classification of partition elimination
//	Figure 16    — scanned partitions per fact table, Planner vs Orca
//	Figure 17    — runtime improvement with partition selection enabled
//	Figure 18a-c — plan-size scaling: static, dynamic, and DML plans
//
// Usage:
//
//	experiments [-segments N] [-rows N] [-sales N] [-iters N] [-only table2|table3|fig16|fig17|fig18]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"partopt/internal/bench"
	"partopt/internal/workload"
)

func main() {
	segments := flag.Int("segments", 4, "number of cluster segments")
	rows := flag.Int("rows", 60000, "lineitem rows for Table 2")
	sales := flag.Int("sales", 40, "star-schema sales rows per day")
	iters := flag.Int("iters", 5, "timing iterations (fastest run wins)")
	only := flag.String("only", "", "run a single experiment (table2|table3|fig16|fig17|fig18)")
	flag.Parse()

	want := func(name string) bool { return *only == "" || *only == name }
	starCfg := workload.DefaultStarConfig()
	starCfg.SalesPerDay = *sales

	if want("table2") {
		fmt.Println("== Table 2 ==============================================================")
		t2, err := bench.RunTable2(bench.Table2Config{Rows: *rows, Segments: *segments, Iters: *iters})
		fatalIf(err)
		fmt.Println(bench.FormatTable2(t2))
	}

	var stats []bench.QueryStat
	if want("table3") || want("fig16") {
		var err error
		stats, err = bench.RunWorkload(starCfg, *segments)
		fatalIf(err)
	}
	if want("table3") {
		fmt.Println("== Table 3 ==============================================================")
		fmt.Println(bench.FormatTable3(stats))
		fmt.Println("Per-query detail:")
		fmt.Printf("%-24s %-16s %6s %6s %6s\n", "query", "fact", "total", "orca", "plnr")
		for _, s := range stats {
			fmt.Printf("%-24s %-16s %6d %6d %6d\n", s.Name, s.Fact, s.TotalParts, s.OrcaParts, s.LegacyParts)
		}
		fmt.Println()
	}
	if want("fig16") {
		fmt.Println("== Figure 16 ============================================================")
		fmt.Println(bench.FormatFigure16(bench.Figure16(stats)))
	}

	if want("fig17") {
		fmt.Println("== Figure 17 ============================================================")
		f17, err := bench.RunFigure17(starCfg, *segments, *iters)
		fatalIf(err)
		fmt.Println(bench.FormatFigure17(f17))
	}

	if want("fig18") {
		fmt.Println("== Figure 18 ============================================================")
		a, err := bench.RunFigure18a(*segments)
		fatalIf(err)
		fmt.Println(bench.FormatFigure18(
			"Figure 18(a): static partition elimination — plan size",
			"% of partitions scanned", a))
		b, err := bench.RunFigure18b(*segments)
		fatalIf(err)
		fmt.Println(bench.FormatFigure18(
			"Figure 18(b): dynamic partition elimination — plan size",
			"partitions per table", b))
		c, err := bench.RunFigure18c(*segments)
		fatalIf(err)
		fmt.Println(bench.FormatFigure18(
			"Figure 18(c): DML update join — plan size",
			"partitions per table", c))
	}

	if *only != "" && !isKnown(*only) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want table2|table3|fig16|fig17|fig18)\n", *only)
		os.Exit(2)
	}
}

func isKnown(name string) bool {
	return strings.Contains("table2 table3 fig16 fig17 fig18", name)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
