// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's layout:
//
//	Table 2      — full-scan overhead of partitioning lineitem
//	Table 3      — workload classification of partition elimination
//	Figure 16    — scanned partitions per fact table, Planner vs Orca
//	Figure 17    — runtime improvement with partition selection enabled
//	Figure 18a-c — plan-size scaling: static, dynamic, and DML plans
//	plancache    — point-query latency with the plan cache off vs on
//	colscan      — vectorized scan/filter/agg kernel throughput
//	paropt       — memo-search latency per star width and optimizer pool size
//
// With -json, each experiment additionally writes its headline metrics to
// BENCH_<name>.json in -json-dir (default: current directory) using the
// stable {experiment, metric, value, unit} record schema, so the repo can
// track its performance trajectory commit over commit.
//
// Usage:
//
//	experiments [-segments N] [-rows N] [-sales N] [-iters N] [-only table2|table3|fig16|fig17|fig18|plancache] [-json] [-json-dir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"partopt/internal/bench"
	"partopt/internal/workload"
)

func main() {
	segments := flag.Int("segments", 4, "number of cluster segments")
	rows := flag.Int("rows", 60000, "lineitem rows for Table 2")
	sales := flag.Int("sales", 40, "star-schema sales rows per day")
	iters := flag.Int("iters", 5, "timing iterations (fastest run wins)")
	only := flag.String("only", "", "run a single experiment (table2|table3|fig16|fig17|fig18|plancache|outerdpe|colscan|paropt)")
	jsonOut := flag.Bool("json", false, "write BENCH_<name>.json files with the headline metrics")
	jsonDir := flag.String("json-dir", ".", "directory for -json output files")
	flag.Parse()

	want := func(name string) bool { return *only == "" || *only == name }
	starCfg := workload.DefaultStarConfig()
	starCfg.SalesPerDay = *sales

	emit := func(name string, recs []benchRecord) {
		if *jsonOut {
			fatalIf(writeBenchJSON(*jsonDir, name, recs))
		}
	}

	if want("table2") {
		fmt.Println("== Table 2 ==============================================================")
		t2, err := bench.RunTable2(bench.Table2Config{Rows: *rows, Segments: *segments, Iters: *iters})
		fatalIf(err)
		fmt.Println(bench.FormatTable2(t2))
		emit("table2", table2Records(t2, *rows))
	}

	var stats []bench.QueryStat
	if want("table3") || want("fig16") {
		var err error
		stats, err = bench.RunWorkload(starCfg, *segments)
		fatalIf(err)
	}
	if want("table3") {
		fmt.Println("== Table 3 ==============================================================")
		fmt.Println(bench.FormatTable3(stats))
		fmt.Println("Per-query detail:")
		fmt.Printf("%-24s %-16s %6s %6s %6s\n", "query", "fact", "total", "orca", "plnr")
		for _, s := range stats {
			fmt.Printf("%-24s %-16s %6d %6d %6d\n", s.Name, s.Fact, s.TotalParts, s.OrcaParts, s.LegacyParts)
		}
		fmt.Println()
		emit("table3", table3Records(stats))
	}
	if want("fig16") {
		fmt.Println("== Figure 16 ============================================================")
		f16 := bench.Figure16(stats)
		fmt.Println(bench.FormatFigure16(f16))
		emit("fig16", fig16Records(f16))
	}

	if want("fig17") {
		fmt.Println("== Figure 17 ============================================================")
		f17, err := bench.RunFigure17(starCfg, *segments, *iters)
		fatalIf(err)
		fmt.Println(bench.FormatFigure17(f17))
		emit("fig17", fig17Records(f17))
	}

	if want("fig18") {
		fmt.Println("== Figure 18 ============================================================")
		a, err := bench.RunFigure18a(*segments)
		fatalIf(err)
		fmt.Println(bench.FormatFigure18(
			"Figure 18(a): static partition elimination — plan size",
			"% of partitions scanned", a))
		emit("fig18a", fig18Records("fig18a", a))
		b, err := bench.RunFigure18b(*segments)
		fatalIf(err)
		fmt.Println(bench.FormatFigure18(
			"Figure 18(b): dynamic partition elimination — plan size",
			"partitions per table", b))
		emit("fig18b", fig18Records("fig18b", b))
		c, err := bench.RunFigure18c(*segments)
		fatalIf(err)
		fmt.Println(bench.FormatFigure18(
			"Figure 18(c): DML update join — plan size",
			"partitions per table", c))
		emit("fig18c", fig18Records("fig18c", c))
	}

	if want("plancache") {
		fmt.Println("== Plan cache ===========================================================")
		pcCfg := bench.DefaultPlanCacheConfig()
		pcCfg.Segments = *segments
		pcCfg.Iters = *iters
		pc, err := bench.RunPlanCache(pcCfg)
		fatalIf(err)
		fmt.Println(bench.FormatPlanCache(pc))
		emit("plancache", plancacheRecords(pc))
	}

	if want("colscan") {
		fmt.Println("== Columnar kernels =====================================================")
		csCfg := bench.ColScanConfig{Rows: *rows, Segments: *segments, Iters: *iters}
		cs, err := bench.RunColScan(csCfg)
		fatalIf(err)
		fmt.Println(bench.FormatColScan(cs))
		emit("colscan", colscanRecords(cs))
	}

	if want("outerdpe") {
		fmt.Println("== Outer-join DPE =======================================================")
		odCfg := bench.DefaultOuterDPEConfig()
		odCfg.Segments = *segments
		od, err := bench.RunOuterDPE(odCfg)
		fatalIf(err)
		fmt.Println(bench.FormatOuterDPE(od))
		emit("outerdpe", outerdpeRecords(od))
	}

	if want("paropt") {
		fmt.Println("== Parallel optimization ================================================")
		poCfg := bench.DefaultParoptConfig()
		poCfg.Segments = *segments
		poCfg.Iters = *iters
		po, err := bench.RunParopt(poCfg)
		fatalIf(err)
		fmt.Println(bench.FormatParopt(po))
		emit("paropt", paroptRecords(po))
	}

	if *only != "" && !isKnown(*only) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want table2|table3|fig16|fig17|fig18|plancache|outerdpe|colscan|paropt)\n", *only)
		os.Exit(2)
	}
}

func isKnown(name string) bool {
	return strings.Contains("table2 table3 fig16 fig17 fig18 plancache outerdpe colscan paropt", name)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
