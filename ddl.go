package partopt

import (
	"fmt"

	"partopt/internal/catalog"
	"partopt/internal/part"
	"partopt/internal/types"
)

// ColumnDef declares one table column.
type ColumnDef struct {
	Name string
	Type ColType
}

// Columns builds a column list from alternating name/type pairs:
// Columns("id", TypeInt, "amount", TypeFloat).
func Columns(pairs ...interface{}) []ColumnDef {
	if len(pairs)%2 != 0 {
		panic("partopt: Columns needs name/type pairs")
	}
	out := make([]ColumnDef, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("partopt: Columns argument %d must be a string", i))
		}
		typ, ok := pairs[i+1].(ColType)
		if !ok {
			panic(fmt.Sprintf("partopt: Columns argument %d must be a ColType", i+1))
		}
		out = append(out, ColumnDef{Name: name, Type: typ})
	}
	return out
}

// TableOption configures distribution or partitioning at CreateTable time.
type TableOption interface {
	apply(*tableConfig) error
}

type tableConfig struct {
	cols   []ColumnDef
	dist   *catalog.DistPolicy
	levels []part.LevelSpec
}

func (c *tableConfig) colOrd(name string) (int, error) {
	for i, col := range c.cols {
		if col.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("partopt: unknown column %q", name)
}

type optionFunc func(*tableConfig) error

func (f optionFunc) apply(c *tableConfig) error { return f(c) }

// DistributedBy hash-distributes the table's rows by the named columns.
func DistributedBy(cols ...string) TableOption {
	return optionFunc(func(c *tableConfig) error {
		if len(cols) == 0 {
			return fmt.Errorf("partopt: DistributedBy needs at least one column")
		}
		ords := make([]int, len(cols))
		for i, name := range cols {
			ord, err := c.colOrd(name)
			if err != nil {
				return err
			}
			ords[i] = ord
		}
		d := catalog.Hashed(ords...)
		c.dist = &d
		return nil
	})
}

// Replicated stores a full copy of the table on every segment — the usual
// choice for small dimension tables.
func Replicated() TableOption {
	return optionFunc(func(c *tableConfig) error {
		d := catalog.Replicated()
		c.dist = &d
		return nil
	})
}

// PartitionByRange adds a range-partitioning level with consecutive
// [boundᵢ, boundᵢ₊₁) partitions. Options compose: a second PartitionBy*
// creates a sub-partitioning level (paper §2.4).
func PartitionByRange(col string, bounds ...Value) TableOption {
	return optionFunc(func(c *tableConfig) error {
		ord, err := c.colOrd(col)
		if err != nil {
			return err
		}
		if len(bounds) < 2 {
			return fmt.Errorf("partopt: PartitionByRange needs at least two bounds")
		}
		raw := make([]types.Datum, len(bounds))
		for i, b := range bounds {
			raw[i] = toRow([]Value{b})[0]
		}
		c.levels = append(c.levels, part.RangeLevel(ord, raw...))
		return nil
	})
}

// PartitionByRangeMonthly range-partitions a date column into `months`
// consecutive partitions of monthsPer months each, starting at the given
// month (the paper's Fig. 1 "orders partitioned by date" scheme).
func PartitionByRangeMonthly(col string, startYear, startMonth, months int) TableOption {
	return PartitionByRangeMonthlyEvery(col, startYear, startMonth, months, 1)
}

// PartitionByRangeMonthlyEvery is PartitionByRangeMonthly with a partition
// width of monthsPer months (Table 2's "each part represents 2 months").
func PartitionByRangeMonthlyEvery(col string, startYear, startMonth, months, monthsPer int) TableOption {
	return optionFunc(func(c *tableConfig) error {
		ord, err := c.colOrd(col)
		if err != nil {
			return err
		}
		c.levels = append(c.levels, part.RangeLevel(ord, part.MonthlyBounds(startYear, startMonth, months, monthsPer)...))
		return nil
	})
}

// PartitionByRangeDays range-partitions a date column into partitions of
// daysPer days (Table 2's bi-weekly and weekly schemes).
func PartitionByRangeDays(col string, startYear, startMonth, startDay, totalDays, daysPer int) TableOption {
	return optionFunc(func(c *tableConfig) error {
		ord, err := c.colOrd(col)
		if err != nil {
			return err
		}
		c.levels = append(c.levels, part.RangeLevel(ord, part.DayBounds(startYear, startMonth, startDay, totalDays, daysPer)...))
		return nil
	})
}

// PartitionByRangeInt range-partitions an int column into n equal ranges
// over [lo, hi).
func PartitionByRangeInt(col string, lo, hi int64, n int) TableOption {
	return optionFunc(func(c *tableConfig) error {
		ord, err := c.colOrd(col)
		if err != nil {
			return err
		}
		c.levels = append(c.levels, part.RangeLevel(ord, part.IntBounds(lo, hi, n)...))
		return nil
	})
}

// ListPartition names one partition of a PartitionByList level.
type ListPartition struct {
	Name   string
	Values []Value
}

// PartitionByList adds a list (categorical) partitioning level.
func PartitionByList(col string, parts ...ListPartition) TableOption {
	return optionFunc(func(c *tableConfig) error {
		ord, err := c.colOrd(col)
		if err != nil {
			return err
		}
		if len(parts) == 0 {
			return fmt.Errorf("partopt: PartitionByList needs at least one partition")
		}
		names := make([]string, len(parts))
		values := make([][]types.Datum, len(parts))
		for i, p := range parts {
			names[i] = p.Name
			values[i] = toRow(p.Values)
		}
		c.levels = append(c.levels, part.ListLevel(ord, names, values))
		return nil
	})
}

// CreateTable registers a table and allocates its storage. Without a
// distribution option the table is hash-distributed on its first column.
// Like every catalog change, it invalidates cached plans.
func (e *Engine) CreateTable(name string, cols []ColumnDef, opts ...TableOption) error {
	cfg := &tableConfig{cols: cols}
	for _, o := range opts {
		if err := o.apply(cfg); err != nil {
			return err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	catCols := make([]catalog.Column, len(cols))
	for i, c := range cols {
		catCols[i] = catalog.Column{Name: c.Name, Kind: c.Type.kind()}
	}
	dist := catalog.Hashed(0)
	if cfg.dist != nil {
		dist = *cfg.dist
	}
	t, err := e.cat.CreateTable(name, catCols, dist, cfg.levels...)
	if err != nil {
		return err
	}
	e.store.CreateTable(t)
	e.plans.Bump()
	// Partition-layout surface changed: stamp cached OID selections stale.
	// Data writes deliberately do NOT bump this epoch — desc.Select is a
	// pure function of the partition descriptor and the derived intervals.
	e.rt.OIDCache.Bump()
	return nil
}

// MustCreateTable is CreateTable panicking on error — for examples and
// fixtures.
func (e *Engine) MustCreateTable(name string, cols []ColumnDef, opts ...TableOption) {
	if err := e.CreateTable(name, cols, opts...); err != nil {
		panic(err)
	}
}
