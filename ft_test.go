package partopt

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"partopt/internal/exec"
	"partopt/internal/fault"
	"partopt/internal/storage"
)

// Engine-level fault tolerance: kill-a-segment drills against the SQL
// surface, the probe loop, and the DML no-retry contract.

// queryMultiset runs a query and renders the result as a sorted bag.
func queryMultiset(t *testing.T, eng *Engine, q string) []string {
	t.Helper()
	rows, err := eng.Query(q)
	if err != nil {
		t.Fatalf("Query(%s): %v", q, err)
	}
	out := make([]string, 0, len(rows.Data))
	for _, r := range rows.Data {
		out = append(out, fmt.Sprintf("%v", r))
	}
	sort.Strings(out)
	return out
}

func sameBag(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertMirrorsConsistent requires both replicas of every segment of every
// table to hold identical heaps — the invariant a half-done DML must not
// break.
func assertMirrorsConsistent(t *testing.T, eng *Engine) {
	t.Helper()
	for _, tab := range eng.cat.Tables() {
		for seg := 0; seg < eng.segments; seg++ {
			for _, leaf := range storage.LeafOIDs(tab) {
				p, err := eng.store.ScanLeafAt(tab.OID, seg, 0, leaf)
				if err != nil {
					t.Fatalf("scan replica 0: %v", err)
				}
				m, err := eng.store.ScanLeafAt(tab.OID, seg, 1, leaf)
				if err != nil {
					t.Fatalf("scan replica 1: %v", err)
				}
				if fmt.Sprintf("%v", p) != fmt.Sprintf("%v", m) {
					t.Fatalf("%s seg %d leaf %d: replicas diverged", tab.Name, seg, leaf)
				}
			}
		}
	}
}

const ftProbeQuery = `SELECT d.year, d.month, count(*), sum(o.amount)
	FROM orders_fk o, date_dim d
	WHERE o.date_id = d.date_id GROUP BY d.year, d.month`

func TestEngineProbeDetectedFailover(t *testing.T) {
	eng := paperEngine(t, 4)
	eng.EnableFaultTolerance(FTConfig{ProbeInterval: 2 * time.Millisecond, DownAfter: 2})
	defer eng.StopFTS()

	golden := queryMultiset(t, eng, ftProbeQuery)
	retriedBefore := eng.Obs().Counter("partopt_queries_retried_total").Value()

	if err := eng.KillSegment(1); err != nil {
		t.Fatalf("KillSegment: %v", err)
	}
	// The probe loop must detect the death and fail over on its own — no
	// query traffic required.
	deadline := time.Now().Add(5 * time.Second)
	for eng.SegmentFailovers() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("probe loop never failed over (failovers = %d)", eng.SegmentFailovers())
		}
		time.Sleep(time.Millisecond)
	}

	// Queries against the post-failover cluster are correct and need zero
	// coordinator retries: the primary map already points at the mirror.
	if got := queryMultiset(t, eng, ftProbeQuery); !sameBag(got, golden) {
		t.Fatalf("post-failover answer differs from healthy cluster")
	}
	if got := eng.Obs().Counter("partopt_queries_retried_total").Value(); got != retriedBefore {
		t.Fatalf("probe-detected failover still cost %d retries", got-retriedBefore)
	}

	health, ok := eng.SegmentHealth()
	if !ok {
		t.Fatalf("SegmentHealth not available with FTS enabled")
	}
	if health[1].Primary == 0 {
		t.Fatalf("segment 1 still routed to the killed replica")
	}
	foundDown := false
	for _, rs := range health[1].Replicas {
		if rs.State == "down" {
			foundDown = true
		}
	}
	if !foundDown {
		t.Fatalf("killed replica not marked down: %+v", health[1])
	}

	// Revive: storage resyncs, FTS walks recovered → up, data still right.
	if err := eng.ReviveSegment(1); err != nil {
		t.Fatalf("ReviveSegment: %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		health, _ = eng.SegmentHealth()
		allUp := true
		for _, rs := range health[1].Replicas {
			if rs.State != "up" {
				allUp = false
			}
		}
		if allUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("revived replica never walked back to up: %+v", health[1])
		}
		time.Sleep(time.Millisecond)
	}
	if got := queryMultiset(t, eng, ftProbeQuery); !sameBag(got, golden) {
		t.Fatalf("post-revive answer differs from healthy cluster")
	}
	assertMirrorsConsistent(t, eng)
}

func TestEngineEvidenceFailoverSQL(t *testing.T) {
	// ProbeInterval 0: detection can only come from a query tripping over
	// the dead segment — the per-query recovery path, end to end over SQL.
	eng := paperEngine(t, 4)
	eng.EnableFaultTolerance(FTConfig{ProbeInterval: 0, DownAfter: 2})
	defer eng.StopFTS()

	golden := queryMultiset(t, eng, ftProbeQuery)
	if err := eng.KillSegment(2); err != nil {
		t.Fatalf("KillSegment: %v", err)
	}
	if got := queryMultiset(t, eng, ftProbeQuery); !sameBag(got, golden) {
		t.Fatalf("evidence-driven recovery returned a different answer")
	}
	if got := eng.SegmentFailovers(); got != 1 {
		t.Fatalf("failovers = %d, want exactly 1", got)
	}
	if got := eng.Obs().Counter("partopt_queries_retried_total").Value(); got != 1 {
		t.Fatalf("retries = %d, want exactly 1", got)
	}
}

func TestEngineDMLNeverRetried(t *testing.T) {
	// Satellite: a segment fault mid-UPDATE must abort the statement as
	// non-retryable (retrying DML would double-apply the survivors' work),
	// leave primary and mirror consistent, and let an idempotent re-run
	// converge to the same state as a never-faulted twin.
	const upd = "UPDATE orders SET amount = 999 WHERE date BETWEEN '2012-01-01' AND '2012-01-31'"
	const check = "SELECT order_id, amount FROM orders"

	twin := paperEngine(t, 4)
	twin.EnableFaultTolerance(FTConfig{ProbeInterval: 0, DownAfter: 2})
	defer twin.StopFTS()
	if _, err := twin.Exec(upd); err != nil {
		t.Fatalf("twin update: %v", err)
	}
	want := queryMultiset(t, twin, check)

	eng := paperEngine(t, 4)
	eng.EnableFaultTolerance(FTConfig{ProbeInterval: 0, DownAfter: 2})
	defer eng.StopFTS()
	if attempts, _ := eng.RetryPolicy(); attempts < 2 {
		t.Fatalf("fixture has no retry budget — the test would prove nothing")
	}
	inj := fault.NewInjector(5)
	inj.Arm(fault.Rule{Point: fault.SegExec, Kind: fault.KindTransient, Seg: 0, Once: true})
	eng.SetFaults(inj)

	_, err := eng.Exec(upd)
	if err == nil {
		t.Fatalf("UPDATE survived an injected segment fault — it must not be retried")
	}
	if exec.IsTransient(err) {
		t.Fatalf("failed DML still marked transient (an outer layer would retry it): %v", err)
	}
	if !strings.Contains(err.Error(), "DML aborted") {
		t.Fatalf("error does not explain the no-retry decision: %v", err)
	}
	if got := inj.Triggered(); got != 1 {
		t.Fatalf("fault fired %d times — the DML was re-executed", got)
	}
	// Partial effects are allowed; replica divergence is not.
	assertMirrorsConsistent(t, eng)

	// The statement is idempotent, so a clean re-run converges with the twin.
	eng.SetFaults(nil)
	if _, err := eng.Exec(upd); err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if got := queryMultiset(t, eng, check); !sameBag(got, want) {
		t.Fatalf("converged state differs from the unfaulted twin")
	}
	assertMirrorsConsistent(t, eng)
}
