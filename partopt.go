// Package partopt is an embeddable MPP query engine reproducing
// "Optimizing Queries over Partitioned Tables in MPP Systems" (SIGMOD
// 2014): a shared-nothing cluster simulation with partitioned tables, two
// query optimizers — an Orca-style Memo optimizer with PartitionSelector /
// DynamicScan based partition elimination, and the legacy inheritance-style
// Planner it is evaluated against — and a SQL front end.
//
// Typical use:
//
//	eng, _ := partopt.New(4)
//	eng.MustCreateTable("orders",
//	    partopt.Columns("id", partopt.TypeInt, "amount", partopt.TypeFloat, "date", partopt.TypeDate),
//	    partopt.DistributedBy("id"),
//	    partopt.PartitionByRangeMonthly("date", 2012, 1, 24))
//	eng.Insert("orders", partopt.Int(1), partopt.Float(9.5), partopt.Date(2013, 10, 2))
//	eng.Analyze()
//	rows, _ := eng.Query("SELECT avg(amount) FROM orders WHERE date BETWEEN '2013-10-01' AND '2013-12-31'")
package partopt

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"partopt/internal/catalog"
	"partopt/internal/exec"
	"partopt/internal/fts"
	"partopt/internal/legacy"
	"partopt/internal/logical"
	"partopt/internal/mem"
	"partopt/internal/obs"
	"partopt/internal/oidcache"
	"partopt/internal/orca"
	"partopt/internal/plan"
	"partopt/internal/plancache"
	"partopt/internal/sql"
	"partopt/internal/stats"
	"partopt/internal/storage"
	"partopt/internal/types"
)

// ErrOutOfMemory matches (via errors.Is) the structured error a query
// returns when a memory reservation that cannot be satisfied by spilling
// exceeds the engine's budget.
var ErrOutOfMemory = mem.ErrOutOfMemory

// OptimizerKind selects which planner compiles queries.
type OptimizerKind uint8

// The two optimizers of the paper's evaluation.
const (
	// Orca is the Memo-based optimizer with unified static/dynamic
	// partition elimination (the paper's contribution).
	Orca OptimizerKind = iota
	// LegacyPlanner is the inheritance-style baseline.
	LegacyPlanner
)

func (k OptimizerKind) String() string {
	if k == LegacyPlanner {
		return "planner"
	}
	return "orca"
}

// Engine is one simulated MPP database instance. An Engine is safe for
// concurrent use: the plan phase (bind + optimize + plan-cache access)
// runs under a read lock, catalog-shape changes (DDL, ANALYZE, optimizer
// switches) take the write lock and bump the plan-cache epoch, and query
// execution runs outside the engine lock entirely (plan trees are
// immutable at run time).
type Engine struct {
	cat   *catalog.Catalog
	store *storage.Store
	rt    *exec.Runtime

	// mu orders the plan phase against catalog changes. It does not cover
	// execution or storage (the store has its own lock).
	mu    sync.RWMutex
	plans *plancache.Cache
	met   engineMetrics

	optimizer        OptimizerKind
	disableSelection bool
	optWorkers       int
	segments         int
	govCfg           mem.Config

	// fts is the segment fault tolerance service; nil until
	// EnableFaultTolerance (see ft.go).
	fts *fts.Service
}

// engineMetrics caches engine-level instrument pointers (cache counters
// are mirrored by the plancache itself; see wireCacheMetrics).
type engineMetrics struct {
	// optimizations counts optimizer invocations — a cache hit performs
	// zero of them.
	optimizations *obs.Counter
	// hitLatency observes end-to-end latency of queries served from the
	// plan cache.
	hitLatency *obs.Histogram
	// optGroups and optTasks accumulate memo-search effort across
	// optimizer invocations: groups explored and parallel tasks spawned
	// (zero tasks when the search runs serially).
	optGroups *obs.Counter
	optTasks  *obs.Counter
}

// New creates an engine with the given number of segments.
func New(segments int) (*Engine, error) {
	if segments < 1 {
		return nil, fmt.Errorf("partopt: need at least one segment")
	}
	st := storage.NewStore(segments)
	reg := obs.NewRegistry()
	e := &Engine{
		cat:      catalog.New(),
		store:    st,
		rt:       &exec.Runtime{Store: st, Obs: reg, OIDCache: oidcache.New(DefaultOIDCacheCapacity)},
		plans:    plancache.New(DefaultPlanCacheCapacity),
		segments: segments,
	}
	e.met.optimizations = reg.Counter("partopt_optimizations_total")
	e.met.hitLatency = reg.Histogram("partopt_plan_cache_hit_latency_seconds", obs.DefaultLatencyBuckets())
	e.met.optGroups = reg.Counter("partopt_optimizer_memo_groups_total")
	e.met.optTasks = reg.Counter("partopt_optimizer_parallel_tasks_total")
	e.wireCacheMetrics()
	return e, nil
}

// Segments returns the cluster width.
func (e *Engine) Segments() int { return e.segments }

// SetOptimizer switches between Orca and the legacy Planner. Cached plans
// are keyed by optimizer, but the switch still bumps the epoch: settings
// changes are invalidating surfaces.
func (e *Engine) SetOptimizer(k OptimizerKind) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if k != e.optimizer {
		e.plans.Bump()
	}
	e.optimizer = k
}

// Optimizer reports the active optimizer.
func (e *Engine) Optimizer() OptimizerKind {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.optimizer
}

// SetPartitionSelection enables or disables partition elimination in the
// Orca optimizer (the paper's Figure 17 knob). The legacy planner's
// equivalent knob is its dynamic-elimination flag, toggled the same way.
func (e *Engine) SetPartitionSelection(enabled bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.disableSelection != !enabled {
		e.plans.Bump()
	}
	e.disableSelection = !enabled
}

// SetOptimizerWorkers sets the Orca memo-search goroutine pool size; values
// of 1 or less run the search serially. The chosen plan is identical for
// every worker count (parallel search is deterministic — see DESIGN.md
// §16); only optimization latency and the EXPLAIN ANALYZE "optimization:"
// header change. The switch still bumps the plan-cache epoch: settings
// changes are invalidating surfaces, and cached entries replay the search
// figures of the compilation that created them.
func (e *Engine) SetOptimizerWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.optWorkers != n {
		e.plans.Bump()
	}
	e.optWorkers = n
}

// OptimizerWorkers reports the configured memo-search pool size.
func (e *Engine) OptimizerWorkers() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.optWorkers < 1 {
		return 1
	}
	return e.optWorkers
}

// SetMemBudget caps the executor's total memory across all concurrent
// queries, in bytes. A query whose irreducible working set would exceed it
// fails with ErrOutOfMemory; working sets above the per-query threshold
// (see SetWorkMem) spill to disk instead. 0 removes the cap. Call before
// running queries — the governor is rebuilt, not adjusted in place.
func (e *Engine) SetMemBudget(bytes int64) {
	e.govCfg.Total = bytes
	e.rebuildGovernor()
}

// SetWorkMem sets the per-query in-memory working-set threshold, in bytes:
// above it, hash joins, aggregations and sorts spill to disk. 0 derives a
// fair share of the total budget (or unlimited when there is no budget).
func (e *Engine) SetWorkMem(bytes int64) {
	e.govCfg.WorkMem = bytes
	e.rebuildGovernor()
}

// SetMaxConcurrent bounds the queries executing at once; excess queries
// wait in an admission queue (cancellation and deadlines abort queued
// queries cleanly). 0 removes the bound.
func (e *Engine) SetMaxConcurrent(n int) {
	e.govCfg.MaxConcurrent = n
	e.rebuildGovernor()
}

// SetSpillDir places operator spill files under dir ("" = the system temp
// directory). Each query gets its own subdirectory, removed when the query
// ends.
func (e *Engine) SetSpillDir(dir string) {
	e.govCfg.BaseDir = dir
	e.rebuildGovernor()
}

func (e *Engine) rebuildGovernor() {
	if e.govCfg == (mem.Config{}) {
		e.rt.Gov = nil
		return
	}
	e.rt.Gov = mem.NewGovernor(e.govCfg)
}

// Insert adds one row to a table. Like every write, it bumps the plan-
// cache epoch: cached plans stay executable but were costed against the
// old data.
func (e *Engine) Insert(table string, vals ...Value) error {
	e.mu.RLock()
	t, ok := e.cat.Table(table)
	if !ok {
		e.mu.RUnlock()
		return fmt.Errorf("partopt: unknown table %q", table)
	}
	err := e.store.Insert(t, toRow(vals))
	e.plans.Bump()
	e.mu.RUnlock()
	return err
}

// InsertRows bulk-loads rows in one storage critical section (one lock
// acquisition and one columnar append per touched leaf, one epoch bump for
// the whole batch). The batch is all-or-nothing: if any row fails
// validation or routing, nothing is inserted.
func (e *Engine) InsertRows(table string, rows [][]Value) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.cat.Table(table)
	if !ok {
		return fmt.Errorf("partopt: unknown table %q", table)
	}
	defer e.plans.Bump()
	batch := make([]types.Row, len(rows))
	for i, r := range rows {
		batch[i] = toRow(r)
	}
	return e.store.InsertBatch(t, batch)
}

// CreateIndex adds a secondary index over one column. Partitioned tables
// get one physical index per leaf partition, which lets the optimizer
// combine partition elimination with index lookups (DynamicIndexScan).
func (e *Engine) CreateIndex(name, table, column string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.cat.Table(table)
	if !ok {
		return fmt.Errorf("partopt: unknown table %q", table)
	}
	ord, ok := t.ColOrd(column)
	if !ok {
		return fmt.Errorf("partopt: table %q has no column %q", table, column)
	}
	if _, exists := t.IndexOn(ord); exists {
		return fmt.Errorf("partopt: column %q already indexed", column)
	}
	def := catalog.IndexDef{Name: name, ColOrd: ord}
	if err := e.store.CreateIndex(t, def); err != nil {
		return err
	}
	t.Indexes = append(t.Indexes, def)
	e.plans.Bump()
	return nil
}

// Analyze collects optimizer statistics for every table and invalidates
// cached plans (they were costed against the old statistics).
func (e *Engine) Analyze() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	err := stats.CollectAll(e.store, e.cat)
	e.plans.Bump()
	return err
}

// TableNames lists the catalog's tables.
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ts := e.cat.Tables()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

// NumPartitions returns the leaf partition count of a table (1 for
// unpartitioned tables).
func (e *Engine) NumPartitions(table string) (int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.cat.Table(table)
	if !ok {
		return 0, fmt.Errorf("partopt: unknown table %q", table)
	}
	if !t.IsPartitioned() {
		return 1, nil
	}
	return t.Part.NumLeaves(), nil
}

// Rows is a query result.
type Rows struct {
	Columns []string
	Data    [][]Value

	// Execution metrics.
	PartsScanned map[string]int // table → distinct leaf partitions read
	RowsScanned  int64
	RowsMoved    int64
	SpilledBytes int64 // bytes operators wrote to spill files
	SpillParts   int64 // spill partitions and sort runs created
	PlanSize     int   // serialized plan bytes (the Figure 18 metric)

	// OpStats is the per-operator runtime tree of the executed plan (the
	// main plan, for the legacy planner's multi-plan executions). On an
	// aborted query it carries the partial work done before the abort.
	OpStats *OpStats
	// ExplainAnalyze is the plan annotated with runtime actuals, rendered
	// as EXPLAIN ANALYZE text. Per-operator wall time is sampled only when
	// the query ran through an ExplainAnalyze entry point; plain queries
	// carry the full tree with time=0 (clock reads on every batch pull
	// would tax queries that never render the figure).
	ExplainAnalyze string
}

// Query parses, plans and executes a SELECT, binding args to $1, $2, ...
func (e *Engine) Query(query string, args ...Value) (*Rows, error) {
	return e.QueryCtx(context.Background(), query, args...)
}

// QueryCtx is Query governed by a context: cancelling it or exceeding its
// deadline aborts the query on every segment. On error the returned *Rows,
// when non-nil, carries the partial execution statistics accumulated before
// the abort (no data rows), so callers can report work done so far.
//
// SELECTs run through the plan cache: under Orca the query is normalized
// (liftable literals become trailing parameters) so textually distinct
// point queries share one dynamic-selection plan; a cache hit skips bind
// and optimization entirely.
func (e *Engine) QueryCtx(ctx context.Context, query string, args ...Value) (*Rows, error) {
	p, err := e.prepare(query)
	if err != nil {
		return nil, err
	}
	return e.queryPrepared(ctx, p, args, false)
}

// Exec plans and executes a DML statement (INSERT, UPDATE, DELETE),
// returning the affected row count.
func (e *Engine) Exec(query string, args ...Value) (int64, error) {
	return e.ExecCtx(context.Background(), query, args...)
}

// ExecCtx is Exec governed by a context. Note that cancelling a DML
// statement mid-flight may leave part of its effects applied — the
// simulator has no transactional rollback. DML plans are never cached;
// each successful execution bumps the plan-cache epoch instead.
func (e *Engine) ExecCtx(ctx context.Context, query string, args ...Value) (int64, error) {
	p, err := e.prepare(query)
	if err != nil {
		return 0, err
	}
	return e.execPrepared(ctx, p, args)
}

// Explain returns the physical plan of a query under the active
// optimizer. SELECTs route through the plan cache, so Explain followed by
// Query (or two Explains back-to-back) optimizes once per fingerprint.
func (e *Engine) Explain(query string) (string, error) {
	p, err := e.prepare(query)
	if err != nil {
		return "", err
	}
	if p.kind == kindSelect {
		ent, _, _, err := e.lookupOrCompile(p)
		if err != nil {
			return "", err
		}
		return plan.Explain(ent.Plan), nil
	}
	ent, err := e.compileDML(p)
	if err != nil {
		return "", err
	}
	return plan.Explain(ent.Plan), nil
}

// PlanSize returns the serialized plan size in bytes — the paper's
// Figure 18 metric — without executing the query. Like Explain, SELECTs
// are served from the plan cache.
func (e *Engine) PlanSize(query string) (int, error) {
	p, err := e.prepare(query)
	if err != nil {
		return 0, err
	}
	if p.kind == kindSelect {
		ent, _, _, err := e.lookupOrCompile(p)
		if err != nil {
			return 0, err
		}
		return ent.TotalSize, nil
	}
	ent, err := e.compileDML(p)
	if err != nil {
		return 0, err
	}
	return ent.TotalSize, nil
}

// compileDML binds and plans a non-cacheable statement fresh.
func (e *Engine) compileDML(p *prepared) (*plancache.Entry, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	bound, err := sql.Bind(e.cat, p.stmt)
	if err != nil {
		return nil, err
	}
	return e.compileBound(bound)
}

func (e *Engine) bind(query string) (*sql.Bound, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return sql.Bind(e.cat, stmt)
}

// plan compiles a bound statement with the active optimizer and applies
// the presentation shell (ORDER BY / LIMIT run on the coordinator). For
// the legacy planner the second result carries the prep steps. Every call
// counts one optimizer invocation — the plan cache's purpose is to make
// this counter stop moving under repeated traffic.
func (e *Engine) plan(bound *sql.Bound) (plan.Node, *legacy.Planned, orca.OptStats, error) {
	e.met.optimizations.Inc()
	var node plan.Node
	var pl *legacy.Planned
	var stats orca.OptStats
	switch e.optimizer {
	case LegacyPlanner:
		p := &legacy.Planner{Segments: e.segments, DisableDynamic: e.disableSelection}
		planned, err := p.Plan(bound.Root)
		if err != nil {
			return nil, nil, stats, err
		}
		node, pl = planned.Main, planned
	default:
		o := &orca.Optimizer{
			Segments:         e.segments,
			DisableSelection: e.disableSelection,
			Workers:          e.optWorkers,
		}
		n, err := o.Optimize(bound.Root)
		if err != nil {
			return nil, nil, stats, err
		}
		node = n
		stats = o.Stats
		e.met.optGroups.Add(int64(stats.Groups))
		e.met.optTasks.Add(stats.Tasks)
	}
	if len(bound.OrderBy) > 0 {
		node = plan.NewSort(bound.OrderBy, node)
	}
	if bound.Limit >= 0 {
		node = plan.NewLimit(bound.Limit, node)
	}
	if pl != nil {
		pl.Main = node
	}
	return node, pl, stats, nil
}

// PlanLogical exposes the bound logical tree (for tools and tests).
func (e *Engine) PlanLogical(query string) (logical.Node, error) {
	bound, err := e.bind(query)
	if err != nil {
		return nil, err
	}
	return bound.Root, nil
}

// executeEntry runs a compiled plan with fully bound parameter values
// (explicit arguments followed by any literals the normalizer lifted).
// It takes no engine locks: entries are immutable at run time, and all
// per-execution state lives in the exec.Params / exec.Stats it creates.
// timed turns on per-operator wall-clock sampling (the EXPLAIN ANALYZE
// entry points pass true; plain queries skip the clock reads).
func (e *Engine) executeEntry(ctx context.Context, ent *plancache.Entry, vals []types.Datum, timed bool) (*Rows, error) {
	node, pl := ent.Plan, ent.Legacy
	params := &exec.Params{Vals: vals}

	stats := exec.NewStats()
	if timed {
		stats.EnableTiming()
	}
	out := &Rows{
		Columns:      ent.Columns,
		PartsScanned: map[string]int{},
		PlanSize:     ent.PlanSize,
	}
	fill := func() {
		out.RowsScanned = stats.RowsScanned()
		out.RowsMoved = stats.RowsMoved()
		out.SpilledBytes = stats.SpilledBytes()
		out.SpillParts = stats.SpillParts()
		for _, tname := range stats.TablesScanned() {
			out.PartsScanned[tname] = stats.PartsScanned(tname)
		}
		out.OpStats = buildOpStats(node, stats)
		out.ExplainAnalyze = renderAnalyze(ent, stats)
	}

	var res *exec.Result
	var err error
	if pl != nil {
		res, err = legacy.ExecuteIntoCtx(ctx, e.rt, pl, params, stats)
	} else {
		res, err = exec.RunIntoCtx(ctx, e.rt, node, params, stats)
	}
	if err != nil {
		// Partial stats: what the cluster did before the abort.
		fill()
		return out, err
	}

	fill()
	out.Data = fromRows(res.Rows)
	return out, nil
}

// SortData orders result rows by their rendered form — a helper for tests
// and examples that need deterministic output from an unordered engine.
func (r *Rows) SortData() {
	sort.Slice(r.Data, func(i, j int) bool {
		return fmt.Sprint(r.Data[i]) < fmt.Sprint(r.Data[j])
	})
}
