package partopt

import (
	"strings"
	"testing"
)

func TestIndexScanUnpartitioned(t *testing.T) {
	eng, err := New(2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.MustCreateTable("t", Columns("k", TypeInt, "v", TypeInt), DistributedBy("k"))
	for i := int64(0); i < 1000; i++ {
		if err := eng.Insert("t", Int(i), Int(i%10)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := eng.Analyze(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if err := eng.CreateIndex("t_k_idx", "t", "k"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}

	const q = "SELECT count(*) FROM t WHERE k BETWEEN 100 AND 149"
	out, err := eng.Explain(q)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(out, "IndexScan t using t_k_idx") {
		t.Fatalf("index scan not chosen:\n%s", out)
	}
	rows, err := eng.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if rows.Data[0][0].Int() != 50 {
		t.Errorf("count = %v, want 50", rows.Data[0][0])
	}
	// The index fetched only qualifying rows, not the whole table.
	if rows.RowsScanned > 60 {
		t.Errorf("rows scanned = %d, want ≈50 via the index", rows.RowsScanned)
	}

	// Index stays correct across DML (stale-rebuild path).
	if _, err := eng.Exec("UPDATE t SET k = k + 2000 WHERE k = 120"); err != nil {
		t.Fatalf("update: %v", err)
	}
	rows, err = eng.Query(q)
	if err != nil {
		t.Fatalf("requery: %v", err)
	}
	if rows.Data[0][0].Int() != 49 {
		t.Errorf("count after update = %v, want 49", rows.Data[0][0])
	}
	if _, err := eng.Exec("DELETE FROM t WHERE k = 121"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	rows, err = eng.Query(q)
	if err != nil {
		t.Fatalf("requery 2: %v", err)
	}
	if rows.Data[0][0].Int() != 48 {
		t.Errorf("count after delete = %v, want 48", rows.Data[0][0])
	}
}

func TestDynamicIndexScanComposesWithSelection(t *testing.T) {
	eng, err := New(2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Partitioned on date_id, indexed on amount: a query with predicates
	// on both gets partition elimination AND per-leaf index lookups.
	eng.MustCreateTable("sales",
		Columns("date_id", TypeInt, "amount", TypeInt),
		DistributedBy("date_id"),
		PartitionByRangeInt("date_id", 0, 240, 24),
	)
	for d := int64(0); d < 240; d++ {
		for i := int64(0); i < 20; i++ {
			if err := eng.Insert("sales", Int(d), Int(i*50)); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
	}
	if err := eng.Analyze(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if err := eng.CreateIndex("sales_amount_idx", "sales", "amount"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}

	const q = "SELECT count(*) FROM sales WHERE date_id BETWEEN 100 AND 119 AND amount >= 900"
	out, err := eng.Explain(q)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(out, "DynamicIndexScan") || !strings.Contains(out, "PartitionSelector") {
		t.Fatalf("expected DynamicIndexScan under a PartitionSelector:\n%s", out)
	}
	rows, err := eng.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// 20 day-ids × 2 amounts (900, 950) = 40 rows.
	if rows.Data[0][0].Int() != 40 {
		t.Errorf("count = %v, want 40", rows.Data[0][0])
	}
	// Partition elimination: 2 of 24 leaves.
	if rows.PartsScanned["sales"] != 2 {
		t.Errorf("parts = %d, want 2", rows.PartsScanned["sales"])
	}
	// Index narrowing: only the qualifying rows were fetched.
	if rows.RowsScanned > 60 {
		t.Errorf("rows scanned = %d, want 40 via the index", rows.RowsScanned)
	}
}

func TestIndexWithParams(t *testing.T) {
	eng, err := New(1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.MustCreateTable("t", Columns("k", TypeInt), DistributedBy("k"))
	for i := int64(0); i < 100; i++ {
		if err := eng.Insert("t", Int(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := eng.Analyze(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if err := eng.CreateIndex("tk", "t", "k"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	rows, err := eng.Query("SELECT count(*) FROM t WHERE k = $1", Int(42))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if rows.Data[0][0].Int() != 1 {
		t.Errorf("count = %v", rows.Data[0][0])
	}
}

func TestCreateIndexErrors(t *testing.T) {
	eng, err := New(1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.MustCreateTable("t", Columns("k", TypeInt), DistributedBy("k"))
	if err := eng.CreateIndex("i", "ghost", "k"); err == nil {
		t.Errorf("unknown table accepted")
	}
	if err := eng.CreateIndex("i", "t", "ghost"); err == nil {
		t.Errorf("unknown column accepted")
	}
	if err := eng.CreateIndex("i", "t", "k"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	if err := eng.CreateIndex("i2", "t", "k"); err == nil {
		t.Errorf("duplicate column index accepted")
	}
}

// Results must be identical with and without the index across predicate
// shapes, including ORs whose derived interval sets overlap.
func TestIndexEquivalence(t *testing.T) {
	build := func(withIndex bool) *Engine {
		eng, err := New(2)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		eng.MustCreateTable("t", Columns("k", TypeInt, "v", TypeInt), DistributedBy("v"))
		for i := int64(0); i < 500; i++ {
			if err := eng.Insert("t", Int(i%97), Int(i)); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
		if err := eng.Analyze(); err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		if withIndex {
			if err := eng.CreateIndex("tk", "t", "k"); err != nil {
				t.Fatalf("CreateIndex: %v", err)
			}
		}
		return eng
	}
	plain, indexed := build(false), build(true)
	queries := []string{
		"SELECT count(*) FROM t WHERE k = 13",
		"SELECT count(*) FROM t WHERE k < 10",
		"SELECT count(*) FROM t WHERE k BETWEEN 20 AND 40",
		"SELECT count(*) FROM t WHERE k < 30 OR k < 50",
		"SELECT count(*) FROM t WHERE k IN (1, 2, 3, 90)",
		"SELECT count(*) FROM t WHERE k > 90 AND v < 250",
	}
	for _, q := range queries {
		a, err := plain.Query(q)
		if err != nil {
			t.Fatalf("plain %q: %v", q, err)
		}
		b, err := indexed.Query(q)
		if err != nil {
			t.Fatalf("indexed %q: %v", q, err)
		}
		if a.Data[0][0].Int() != b.Data[0][0].Int() {
			t.Errorf("%q: plain=%v indexed=%v", q, a.Data[0][0], b.Data[0][0])
		}
	}
}
