// Quickstart: create a partitioned table, load it, and watch static
// partition elimination at work — the paper's Figure 1/2 scenario.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"partopt"
)

func main() {
	// A 4-segment cluster.
	eng, err := partopt.New(4)
	if err != nil {
		log.Fatal(err)
	}

	// orders: two years of data partitioned into 24 monthly partitions
	// (Figure 1), hash-distributed across segments by order id.
	err = eng.CreateTable("orders",
		partopt.Columns(
			"order_id", partopt.TypeInt,
			"amount", partopt.TypeFloat,
			"date", partopt.TypeDate,
		),
		partopt.DistributedBy("order_id"),
		partopt.PartitionByRangeMonthly("date", 2012, 1, 24),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Ten orders per month. Rows route automatically to the right
	// partition (the partitioning function fT) and segment (hash
	// distribution).
	id := int64(0)
	for year := 2012; year <= 2013; year++ {
		for month := 1; month <= 12; month++ {
			for day := 1; day <= 10; day++ {
				id++
				if err := eng.Insert("orders",
					partopt.Int(id),
					partopt.Float(float64(100*month+day)),
					partopt.Date(year, month, day),
				); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if err := eng.Analyze(); err != nil {
		log.Fatal(err)
	}

	// The Figure 2 query: summarize the last quarter. Only 3 of the 24
	// partitions need to be touched.
	const q = "SELECT avg(amount) FROM orders WHERE date BETWEEN '2013-10-01' AND '2013-12-31'"

	explain, err := eng.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:")
	fmt.Println(explain)

	rows, err := eng.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	total, _ := eng.NumPartitions("orders")
	fmt.Printf("avg(amount) = %.2f\n", rows.Data[0][0].Float())
	fmt.Printf("partitions scanned: %d of %d (static partition elimination)\n",
		rows.PartsScanned["orders"], total)
}
