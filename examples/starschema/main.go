// Star schema: dynamic (join-driven) partition elimination — the paper's
// Figure 3/4 scenario. The fact table is partitioned on a foreign key into
// a dimension table, so the qualifying partitions are only known at run
// time, after the dimension filter executes. The Orca-style optimizer
// places a PartitionSelector on the join's build side; the legacy planner
// cannot prune through the subquery and scans everything.
//
//	go run ./examples/starschema
package main

import (
	"fmt"
	"log"

	"partopt"
)

func main() {
	eng, err := partopt.New(4)
	if err != nil {
		log.Fatal(err)
	}

	// Dimension: one row per day over two years; date_id is a surrogate
	// day index. Small, so replicated on every segment.
	err = eng.CreateTable("date_dim",
		partopt.Columns(
			"date_id", partopt.TypeInt,
			"year", partopt.TypeInt,
			"month", partopt.TypeInt,
			"day_of_week", partopt.TypeInt,
		),
		partopt.Replicated(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Fact: partitioned on the foreign key date_id, one partition per
	// month (30 day-ids each).
	err = eng.CreateTable("orders",
		partopt.Columns(
			"order_id", partopt.TypeInt,
			"amount", partopt.TypeFloat,
			"date_id", partopt.TypeInt,
		),
		partopt.DistributedBy("order_id"),
		partopt.PartitionByRangeInt("date_id", 0, 24*30, 24),
	)
	if err != nil {
		log.Fatal(err)
	}

	id := int64(0)
	for d := 0; d < 24*30; d++ {
		month := d/30 + 1
		year := 2012 + (month-1)/12
		moy := (month-1)%12 + 1
		if err := eng.Insert("date_dim",
			partopt.Int(int64(d)), partopt.Int(int64(year)), partopt.Int(int64(moy)), partopt.Int(int64(d%7))); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			id++
			if err := eng.Insert("orders",
				partopt.Int(id), partopt.Float(float64(moy)), partopt.Int(int64(d))); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := eng.Analyze(); err != nil {
		log.Fatal(err)
	}

	// Figure 4: the partition key values come from a subquery — they are
	// unknown until run time.
	const q = `SELECT avg(amount) FROM orders WHERE date_id IN
		(SELECT date_id FROM date_dim WHERE year = 2013 AND month BETWEEN 10 AND 12)`

	total, _ := eng.NumPartitions("orders")
	for _, opt := range []partopt.OptimizerKind{partopt.Orca, partopt.LegacyPlanner} {
		eng.SetOptimizer(opt)
		rows, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s avg(amount) = %-6.2f partitions scanned: %2d of %d\n",
			opt, rows.Data[0][0].Float(), rows.PartsScanned["orders"], total)
	}

	eng.SetOptimizer(partopt.Orca)
	explain, err := eng.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\norca plan (note the PartitionSelector on the join's build side,")
	fmt.Println("levels away from its DynamicScan):")
	fmt.Println(explain)
}
