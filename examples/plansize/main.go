// Plan-size compactness: the paper's Figure 18 property. Legacy plans
// enumerate every partition explicitly, so they grow linearly with
// partition count (and quadratically for DML update joins); DynamicScan
// plans stay the same size no matter how many partitions exist.
//
//	go run ./examples/plansize
package main

import (
	"fmt"
	"log"

	"partopt"
	"partopt/internal/workload"
)

func main() {
	fmt.Println("query: SELECT * FROM s, r WHERE r.b = s.b AND s.a < 100")
	fmt.Printf("%-12s %14s %14s\n", "#partitions", "planner bytes", "orca bytes")
	for _, parts := range []int{50, 100, 200, 300} {
		eng, err := partopt.New(2)
		if err != nil {
			log.Fatal(err)
		}
		if err := workload.BuildRS(eng, parts, 0); err != nil {
			log.Fatal(err)
		}
		const q = "SELECT * FROM s, r WHERE r.b = s.b AND s.a < 100"

		eng.SetOptimizer(partopt.LegacyPlanner)
		plannerSize, err := eng.PlanSize(q)
		if err != nil {
			log.Fatal(err)
		}
		eng.SetOptimizer(partopt.Orca)
		orcaSize, err := eng.PlanSize(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %14d %14d\n", parts, plannerSize, orcaSize)
	}

	fmt.Println("\nDML: UPDATE r SET b = s.b FROM s WHERE r.a = s.a")
	fmt.Printf("%-12s %14s %14s\n", "#partitions", "planner bytes", "orca bytes")
	for _, parts := range []int{50, 100, 200} {
		eng, err := partopt.New(2)
		if err != nil {
			log.Fatal(err)
		}
		if err := workload.BuildRS(eng, parts, 0); err != nil {
			log.Fatal(err)
		}
		const q = "UPDATE r SET b = s.b FROM s WHERE r.a = s.a"

		eng.SetOptimizer(partopt.LegacyPlanner)
		plannerSize, err := eng.PlanSize(q)
		if err != nil {
			log.Fatal(err)
		}
		eng.SetOptimizer(partopt.Orca)
		orcaSize, err := eng.PlanSize(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %14d %14d\n", parts, plannerSize, orcaSize)
	}
	fmt.Println("\nplanner growth is linear for scans and quadratic for the update join;")
	fmt.Println("orca plans are independent of the partition count (paper Fig. 18).")
}
