// Indexing: the paper's stated future work ("we plan to address a number
// of advanced subjects including indexing"), implemented as secondary
// per-partition indexes. A DynamicIndexScan composes both mechanisms:
// the PartitionSelector eliminates partitions, and the index narrows each
// surviving partition to the qualifying rows.
//
//	go run ./examples/indexing
package main

import (
	"fmt"
	"log"
	"time"

	"partopt"
)

func main() {
	eng, err := partopt.New(4)
	if err != nil {
		log.Fatal(err)
	}
	// sales: 24 monthly partitions on date_id, secondary index on amount.
	err = eng.CreateTable("sales",
		partopt.Columns("date_id", partopt.TypeInt, "amount", partopt.TypeInt, "cust", partopt.TypeInt),
		partopt.DistributedBy("cust"),
		partopt.PartitionByRangeInt("date_id", 0, 240, 24),
	)
	if err != nil {
		log.Fatal(err)
	}
	rows := make([][]partopt.Value, 0, 240*200)
	for d := int64(0); d < 240; d++ {
		for i := int64(0); i < 200; i++ {
			rows = append(rows, []partopt.Value{
				partopt.Int(d), partopt.Int((d*31 + i*53) % 10000), partopt.Int(i),
			})
		}
	}
	if err := eng.InsertRows("sales", rows); err != nil {
		log.Fatal(err)
	}
	if err := eng.Analyze(); err != nil {
		log.Fatal(err)
	}

	const q = "SELECT count(*) FROM sales WHERE date_id BETWEEN 100 AND 119 AND amount >= 9900"

	run := func(label string) {
		start := time.Now()
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		total, _ := eng.NumPartitions("sales")
		fmt.Printf("%-14s count=%-5d parts %2d/%d  rows fetched %-6d  %v\n",
			label, res.Data[0][0].Int(), res.PartsScanned["sales"], total, res.RowsScanned,
			time.Since(start).Round(time.Microsecond))
	}

	run("scan only:")

	if err := eng.CreateIndex("sales_amount", "sales", "amount"); err != nil {
		log.Fatal(err)
	}
	run("index, cold:") // first use pays the lazy index build
	run("index, warm:")

	out, err := eng.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan (partition selection + per-partition index lookup):")
	fmt.Println(out)
}
