// Multi-level partitioning: the paper's Figure 9 scheme — orders
// partitioned by month and sub-partitioned by region. Queries constraining
// either level (or both) prune the two-dimensional partition grid
// (Figure 10's selection matrix).
//
//	go run ./examples/multilevel
package main

import (
	"fmt"
	"log"

	"partopt"
)

func main() {
	eng, err := partopt.New(2)
	if err != nil {
		log.Fatal(err)
	}

	// 24 months × 2 regions = 48 leaf partitions.
	err = eng.CreateTable("orders",
		partopt.Columns(
			"order_id", partopt.TypeInt,
			"amount", partopt.TypeFloat,
			"date", partopt.TypeDate,
			"region", partopt.TypeString,
		),
		partopt.DistributedBy("order_id"),
		partopt.PartitionByRangeMonthly("date", 2012, 1, 24),
		partopt.PartitionByList("region",
			partopt.ListPartition{Name: "region1", Values: []partopt.Value{partopt.String("Region 1")}},
			partopt.ListPartition{Name: "region2", Values: []partopt.Value{partopt.String("Region 2")}},
		),
	)
	if err != nil {
		log.Fatal(err)
	}

	id := int64(0)
	for year := 2012; year <= 2013; year++ {
		for month := 1; month <= 12; month++ {
			for _, region := range []string{"Region 1", "Region 2"} {
				for day := 1; day <= 5; day++ {
					id++
					if err := eng.Insert("orders",
						partopt.Int(id),
						partopt.Float(float64(month*day)),
						partopt.Date(year, month, day),
						partopt.String(region),
					); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}
	if err := eng.Analyze(); err != nil {
		log.Fatal(err)
	}

	total, _ := eng.NumPartitions("orders")
	fmt.Printf("orders has %d leaf partitions (24 months x 2 regions)\n\n", total)

	// The Figure 10 selection matrix.
	queries := []struct {
		label string
		sql   string
	}{
		{"date in Jan-2012 only",
			"SELECT count(*) FROM orders WHERE date BETWEEN '2012-01-01' AND '2012-01-31'"},
		{"region = 'Region 1' only",
			"SELECT count(*) FROM orders WHERE region = 'Region 1'"},
		{"both predicates",
			"SELECT count(*) FROM orders WHERE date BETWEEN '2012-01-01' AND '2012-01-31' AND region = 'Region 1'"},
		{"no predicate",
			"SELECT count(*) FROM orders"},
	}
	for _, q := range queries {
		rows, err := eng.Query(q.sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s count=%-5d partitions scanned: %2d of %d\n",
			q.label, rows.Data[0][0].Int(), rows.PartsScanned["orders"], total)
	}
}
