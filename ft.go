package partopt

import (
	"fmt"
	"time"

	"partopt/internal/exec"
	"partopt/internal/fts"
	"partopt/internal/storage"
)

// This file is the engine's fault tolerance surface: enabling mirrored
// segments plus the FTS health service, the chaos-drill controls that kill
// and revive segments, and the health introspection the server front end
// (/statz, mppd doctor) and mppsim's \segments render.

// Compile-time wiring proof: the storage layer is a cluster the FTS can
// manage, and the FTS is a failure reporter the executor can feed.
var (
	_ fts.Cluster          = (*storage.Store)(nil)
	_ exec.FailureReporter = (*fts.Service)(nil)
)

// FTConfig tunes fault tolerance at enable time.
type FTConfig struct {
	// ProbeInterval is the background health-probe period; <= 0 disables
	// the probe loop, leaving only evidence-driven detection (useful in
	// tests that step the machine deterministically).
	ProbeInterval time.Duration
	// DownAfter is how many consecutive probe failures declare a segment
	// down (default 2).
	DownAfter int
}

// DefaultFTConfig probes every 50ms and declares down after 2 misses.
func DefaultFTConfig() FTConfig {
	d := fts.DefaultConfig()
	return FTConfig{ProbeInterval: d.ProbeInterval, DownAfter: d.DownAfter}
}

// EnableFaultTolerance turns the engine into a mirrored cluster: every
// segment gets a synchronously-applied mirror replica (cloned from the
// current contents), a fault tolerance service starts watching segment
// health, and the executor begins reporting segment-death evidence to it.
// If no RetryPolicy was configured, a one-retry policy is installed so
// read-only queries transparently recover across a failover. Idempotent
// after the first call.
func (e *Engine) EnableFaultTolerance(cfg FTConfig) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fts != nil {
		return
	}
	e.store.EnableMirrors()
	svc := fts.New(e.store, fts.Config{ProbeInterval: cfg.ProbeInterval, DownAfter: cfg.DownAfter}, e.rt.Obs)
	e.fts = svc
	e.rt.FTS = svc
	if e.rt.Retry.MaxAttempts < 2 {
		e.rt.Retry = exec.RetryPolicy{MaxAttempts: 2, Backoff: 2 * time.Millisecond}
	}
	svc.Start()
}

// FaultTolerant reports whether EnableFaultTolerance has run.
func (e *Engine) FaultTolerant() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.fts != nil
}

// StopFTS halts the background probe loop (evidence-driven detection keeps
// working). Safe to call repeatedly or without fault tolerance enabled.
func (e *Engine) StopFTS() {
	e.mu.RLock()
	svc := e.fts
	e.mu.RUnlock()
	if svc != nil {
		svc.Stop()
	}
}

// SetRetryPolicy bounds coordinator-side re-execution of read-only queries
// that fail transiently. It is honored identically on the embedded path and
// the mppd server path — both run through the same executor retry loop.
func (e *Engine) SetRetryPolicy(maxAttempts int, backoff time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rt.Retry = exec.RetryPolicy{MaxAttempts: maxAttempts, Backoff: backoff}
}

// RetryPolicy reports the configured (maxAttempts, backoff).
func (e *Engine) RetryPolicy() (int, time.Duration) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rt.Retry.MaxAttempts, e.rt.Retry.Backoff
}

// KillSegment kills segment seg's acting primary replica — the chaos
// drill's hammer. Detection and failover are left to the FTS (probe loop
// or query evidence), exactly as if the segment process died.
func (e *Engine) KillSegment(seg int) error {
	if seg < 0 || seg >= e.segments {
		return fmt.Errorf("partopt: segment %d out of range", seg)
	}
	return e.store.KillReplica(seg, e.store.Primary(seg))
}

// ReviveSegment brings segment seg's dead replicas back: the storage layer
// resyncs each from the surviving replica and the FTS walks them through
// recovered back to up.
func (e *Engine) ReviveSegment(seg int) error {
	if seg < 0 || seg >= e.segments {
		return fmt.Errorf("partopt: segment %d out of range", seg)
	}
	e.mu.RLock()
	svc := e.fts
	e.mu.RUnlock()
	for rep := 0; rep < storage.NumReplicas; rep++ {
		if e.store.ReplicaAlive(seg, rep) {
			continue
		}
		if err := e.store.ReviveReplica(seg, rep); err != nil {
			return err
		}
		if svc != nil {
			svc.NoteRecovered(seg, rep)
		}
	}
	return nil
}

// SetFTSDraining flips the FTS drain mode: while draining, probe-driven
// failovers are suppressed (a slow shutdown must not look like mass
// segment death) but evidence-driven recovery for in-flight queries stays
// armed. The server front end calls this as it begins a graceful drain.
func (e *Engine) SetFTSDraining(v bool) {
	e.mu.RLock()
	svc := e.fts
	e.mu.RUnlock()
	if svc != nil {
		svc.SetDraining(v)
	}
}

// ReplicaStatus is one physical replica's health, render-ready.
type ReplicaStatus struct {
	State       string `json:"state"` // up | suspect | down | recovered
	Primary     bool   `json:"primary"`
	ConsecFails int    `json:"consec_fails,omitempty"`
}

// SegmentStatus is one logical segment's health.
type SegmentStatus struct {
	Seg      int                                `json:"seg"`
	Primary  int                                `json:"primary"`
	Replicas [storage.NumReplicas]ReplicaStatus `json:"replicas"`
}

// SegmentHealth snapshots every segment's health. ok is false when fault
// tolerance is not enabled (there is no health to report).
func (e *Engine) SegmentHealth() ([]SegmentStatus, bool) {
	e.mu.RLock()
	svc := e.fts
	e.mu.RUnlock()
	if svc == nil {
		return nil, false
	}
	snap := svc.Snapshot()
	out := make([]SegmentStatus, len(snap))
	for i, sh := range snap {
		st := SegmentStatus{Seg: sh.Seg, Primary: sh.Primary}
		for r, rh := range sh.Replicas {
			st.Replicas[r] = ReplicaStatus{
				State:       rh.State.String(),
				Primary:     rh.ActingAsPrim,
				ConsecFails: rh.ConsecFails,
			}
		}
		out[i] = st
	}
	return out, true
}

// SegmentFailovers reports how many mirror failovers the FTS has executed.
func (e *Engine) SegmentFailovers() int64 {
	e.mu.RLock()
	svc := e.fts
	e.mu.RUnlock()
	if svc == nil {
		return 0
	}
	return svc.Failovers()
}
