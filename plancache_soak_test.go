package partopt

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitGoroutinesSettle waits for the goroutine count to return to the
// pre-run baseline (the chaos suite's leak-check idiom), failing with a
// full stack dump if it doesn't.
func waitGoroutinesSettle(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Soak: concurrent Prepare/Query/Exec traffic racing DDL, ANALYZE and
// optimizer switches against one engine. Run under -race. Afterward the
// cache must still be coherent: a post-soak DDL bump forces a fresh plan
// (no stale plan survives), and no goroutine leaks.
func TestPlanCacheSoak(t *testing.T) {
	eng := cacheFixture(t)
	before := runtime.NumGoroutine()

	const (
		workers = 6
		iters   = 60
	)
	var wg sync.WaitGroup

	// Query workers: ad-hoc literal queries plus a shared prepared
	// statement, mixed shapes so fingerprints collide and diverge.
	shared, err := eng.Prepare("SELECT sum(amount) FROM orders WHERE date BETWEEN $1 AND $2")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				switch rnd.Intn(3) {
				case 0:
					q := fmt.Sprintf("SELECT amount FROM orders WHERE id = %d", 1+rnd.Intn(60))
					if _, err := eng.Query(q); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				case 1:
					m := 1 + rnd.Intn(12)
					if _, err := shared.Query(Date(2013, m, 1), Date(2013, m, 28)); err != nil {
						t.Errorf("worker %d prepared: %v", w, err)
						return
					}
				default:
					if _, err := eng.Explain("SELECT count(*) FROM orders WHERE id < 30"); err != nil {
						t.Errorf("worker %d explain: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Mutator: DDL, ANALYZE, DML and settings churn, all epoch-bumping.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			switch i % 5 {
			case 0:
				if err := eng.Analyze(); err != nil {
					t.Errorf("Analyze: %v", err)
					return
				}
			case 1:
				if err := eng.CreateTable(fmt.Sprintf("soak_%d", i), Columns("x", TypeInt)); err != nil {
					t.Errorf("CreateTable: %v", err)
					return
				}
			case 2:
				if err := eng.Insert("orders", Int(int64(1000+i)), Float(1), Date(2013, 7, 7)); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			case 3:
				eng.SetPartitionSelection(i%2 == 0)
			default:
				if _, err := eng.Exec(fmt.Sprintf("UPDATE orders SET amount = amount + 0 WHERE id = %d", 1000+i)); err != nil {
					t.Errorf("Exec: %v", err)
					return
				}
			}
		}
		eng.SetPartitionSelection(true)
	}()

	wg.Wait()

	st := eng.PlanCacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("soak produced no cache traffic: %+v", st)
	}
	if st.Epoch == 0 {
		t.Errorf("mutator never bumped the epoch: %+v", st)
	}

	// No stale plan survives a bump: the table-scan plan cached above must
	// be recompiled (into an index plan) after CreateIndex.
	const q = "SELECT amount FROM orders WHERE id = 7"
	if _, err := eng.Query(q); err != nil {
		t.Fatalf("pre-index query: %v", err)
	}
	if err := eng.CreateIndex("soak_id_idx", "orders", "id"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	out, err := eng.Explain(q)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(out, "soak_id_idx") {
		t.Errorf("stale pre-index plan survived the epoch bump:\n%s", out)
	}

	waitGoroutinesSettle(t, before)
}
