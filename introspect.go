package partopt

import (
	"fmt"
	"sort"

	"partopt/internal/fault"
	"partopt/internal/obs"
)

// This file is the engine's introspection surface for embedding front
// ends (the mppd server and its doctor checks): the shared metrics
// registry, the admission queue's live state, and per-table partition row
// distributions for skew detection. Everything here is read-only.

// Obs returns the engine's metrics registry. Front ends register their own
// instruments (session counts, process gauges) next to the engine's so one
// exposition covers the whole process.
func (e *Engine) Obs() *obs.Registry { return e.rt.Obs }

// SetFaults arms seeded fault injection across the engine's executor,
// storage and memory layers — the chaos harnesses' hook for making slow or
// failing queries deterministic. Call before queries run; nil disarms.
func (e *Engine) SetFaults(in *fault.Injector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rt.Faults = in
	e.store.SetFaults(in)
	e.govCfg.Faults = in
	e.rt.Gov.SetFaults(in)
}

// AdmissionState is a point-in-time view of the executor's admission queue.
type AdmissionState struct {
	// Active is the number of queries holding execution slots.
	Active int
	// Waiting is the number of queries parked in the admission queue — the
	// overload signal the server front end sheds on.
	Waiting int
	// Capacity is the slot count (0 = admission unbounded, in which case
	// Active and Waiting are always 0).
	Capacity int
}

// AdmissionState reports the admission queue's current depth. With no
// concurrency bound configured (SetMaxConcurrent 0) all fields are zero.
func (e *Engine) AdmissionState() AdmissionState {
	g := e.rt.Gov
	return AdmissionState{Active: g.Active(), Waiting: g.Waiting(), Capacity: g.Capacity()}
}

// PartitionRows is one table's physical row distribution: row counts per
// leaf partition, in partition order (a single element for unpartitioned
// tables). The doctor's partition-skew check compares Max against the
// mean to surface badly chosen partition keys.
type PartitionRows struct {
	Table  string
	Leaves []int64 // rows per leaf, in leaf order
	Total  int64
}

// Max returns the largest per-leaf row count.
func (p PartitionRows) Max() int64 {
	var m int64
	for _, n := range p.Leaves {
		if n > m {
			m = n
		}
	}
	return m
}

// PartitionRowStats reports every table's per-leaf row distribution,
// sorted by table name.
func (e *Engine) PartitionRowStats() ([]PartitionRows, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []PartitionRows
	for _, t := range e.cat.Tables() {
		pr := PartitionRows{Table: t.Name}
		if !t.IsPartitioned() {
			n, err := e.store.RowCount(t)
			if err != nil {
				return nil, fmt.Errorf("partopt: row count of %q: %w", t.Name, err)
			}
			pr.Leaves = []int64{n}
			pr.Total = n
		} else {
			counts, err := e.store.LeafRowCount(t)
			if err != nil {
				return nil, fmt.Errorf("partopt: leaf row count of %q: %w", t.Name, err)
			}
			for _, oid := range t.Part.Expansion() {
				n := counts[oid]
				pr.Leaves = append(pr.Leaves, n)
				pr.Total += n
			}
		}
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out, nil
}
