package partopt

import (
	"strings"
	"testing"
)

// outerFixture is paperEngine plus two dimension rows no fact row matches
// (date_id 50 and 51 route to no orders_fk partition key) and one fact
// month whose dimension row is deleted — so both orientations of an outer
// join have rows to NULL-extend.
func outerFixture(t *testing.T, segs int) *Engine {
	t.Helper()
	eng := paperEngine(t, segs)
	// orders_colo is orders_fk co-distributed on the join key: the one
	// layout where join-driven elimination of the fact side is sound for
	// an outer join (no Motion between selector and scan, and no
	// replication of a preserved side).
	eng.MustCreateTable("orders_colo",
		Columns("order_id", TypeInt, "amount", TypeFloat, "date_id", TypeInt),
		DistributedBy("date_id"),
		PartitionByRangeInt("date_id", 0, 24, 24),
	)
	id := int64(10000)
	for monthID := int64(0); monthID < 24; monthID++ {
		for day := 1; day <= 10; day++ {
			id++
			if err := eng.Insert("orders_colo", Int(id), Float(float64(day)), Int(monthID)); err != nil {
				t.Fatalf("insert orders_colo: %v", err)
			}
		}
	}
	if err := eng.Insert("date_dim", Int(50), Int(2099), Int(1), Int(1)); err != nil {
		t.Fatalf("insert dim: %v", err)
	}
	if err := eng.Insert("date_dim", Int(51), Int(2099), Int(2), Int(2)); err != nil {
		t.Fatalf("insert dim: %v", err)
	}
	if _, err := eng.Exec("DELETE FROM date_dim WHERE date_id = 5"); err != nil {
		t.Fatalf("delete dim: %v", err)
	}
	if err := eng.Analyze(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return eng
}

// A LEFT JOIN preserves its left side: every dimension row appears even
// without a matching fact row, and both optimizers agree on the counts.
func TestLeftJoinPreservesDimension(t *testing.T) {
	eng := outerFixture(t, 3)
	// 23 matched dim rows × 10 orders + 2 unmatched dim rows = 232.
	const q = `SELECT count(*) FROM date_dim d LEFT JOIN orders_fk o ON d.date_id = o.date_id`
	for _, opt := range []OptimizerKind{Orca, LegacyPlanner} {
		eng.SetOptimizer(opt)
		rows, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		if got := rows.Data[0][0].Int(); got != 232 {
			t.Errorf("%v: count = %d, want 232", opt, got)
		}
	}
	// The inner form drops the two unmatched dimension rows.
	for _, opt := range []OptimizerKind{Orca, LegacyPlanner} {
		eng.SetOptimizer(opt)
		rows, err := eng.Query(`SELECT count(*) FROM date_dim d, orders_fk o WHERE d.date_id = o.date_id`)
		if err != nil {
			t.Fatalf("%v inner: %v", opt, err)
		}
		if got := rows.Data[0][0].Int(); got != 230 {
			t.Errorf("%v: inner count = %d, want 230", opt, got)
		}
	}
}

// RIGHT JOIN is LEFT JOIN flipped: the fact side is preserved, so the ten
// orders of the deleted dimension month survive NULL-extended.
func TestRightJoinPreservesFact(t *testing.T) {
	eng := outerFixture(t, 3)
	const q = `SELECT count(*) FROM date_dim d RIGHT JOIN orders_fk o ON d.date_id = o.date_id`
	for _, opt := range []OptimizerKind{Orca, LegacyPlanner} {
		eng.SetOptimizer(opt)
		rows, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		// All 240 fact rows appear; the month-5 ones with NULL dim columns.
		if got := rows.Data[0][0].Int(); got != 240 {
			t.Errorf("%v: count = %d, want 240", opt, got)
		}
	}
}

// Partition elimination against the NULL-producing side of an outer join
// is sound: in dim LEFT JOIN fact, fact rows only appear when matched, so
// Orca prunes fact partitions from the streamed dimension rows. The fact
// table must be co-distributed on the join key — the broadcast-build route
// inner joins use is forbidden here (the dim side is preserved).
func TestOuterJoinDPEOnNullProducingSide(t *testing.T) {
	eng := outerFixture(t, 3)
	eng.SetOptimizer(Orca)
	const q = `SELECT count(*) FROM date_dim d LEFT JOIN orders_colo o ON d.date_id = o.date_id
		WHERE d.year = 2013 AND d.month BETWEEN 10 AND 12`
	rows, err := eng.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got := rows.Data[0][0].Int(); got != 30 {
		t.Errorf("count = %d, want 30", got)
	}
	if got := rows.PartsScanned["orders_colo"]; got != 3 {
		t.Errorf("parts scanned = %d, want 3 of 24 (DPE on the eliminable side)", got)
	}
	// The same query against the order_id-distributed copy of the fact
	// table has no sound elimination route (redistribution would separate
	// selector and scan; replicating the preserved dim side duplicates its
	// unmatched rows) — the planner must fall back to the full scan, not
	// prune unsoundly.
	rows, err = eng.Query(`SELECT count(*) FROM date_dim d LEFT JOIN orders_fk o ON d.date_id = o.date_id
		WHERE d.year = 2013 AND d.month BETWEEN 10 AND 12`)
	if err != nil {
		t.Fatalf("orders_fk Query: %v", err)
	}
	if got := rows.Data[0][0].Int(); got != 30 {
		t.Errorf("orders_fk count = %d, want 30", got)
	}
	if got := rows.PartsScanned["orders_fk"]; got != 24 {
		t.Errorf("orders_fk parts scanned = %d, want 24 (no sound DPE route)", got)
	}
}

// The preserved side of an outer join must never be pruned by the other
// side: in dim RIGHT JOIN fact every fact partition owes its rows to the
// output whether or not the dimension matches them.
func TestOuterJoinNoDPEOnPreservedSide(t *testing.T) {
	eng := outerFixture(t, 3)
	eng.SetOptimizer(Orca)
	// Narrow the dimension hard; the fact side still scans fully.
	const q = `SELECT count(*) FROM date_dim d RIGHT JOIN orders_fk o ON d.date_id = o.date_id
		AND d.year = 2013 AND d.month = 11`
	rows, err := eng.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got := rows.Data[0][0].Int(); got != 240 {
		t.Errorf("count = %d, want all 240 fact rows", got)
	}
	if got := rows.PartsScanned["orders_fk"]; got != 24 {
		t.Errorf("parts scanned = %d, want all 24 (preserved side must not be pruned)", got)
	}
	// Same orientation spelled as fact LEFT JOIN dim.
	rows, err = eng.Query(`SELECT count(*) FROM orders_fk o LEFT JOIN date_dim d ON o.date_id = d.date_id`)
	if err != nil {
		t.Fatalf("flipped Query: %v", err)
	}
	if got := rows.Data[0][0].Int(); got != 240 {
		t.Errorf("flipped count = %d, want 240", got)
	}
	if got := rows.PartsScanned["orders_fk"]; got != 24 {
		t.Errorf("flipped parts scanned = %d, want 24", got)
	}
}

// The plan for an eliminable outer join carries the outer hash join and a
// join-driven PartitionSelector; the preserved-side plan carries neither a
// selector over the fact table nor (under elimination) fewer than all
// partitions at run time.
func TestOuterJoinExplainShape(t *testing.T) {
	eng := outerFixture(t, 2)
	eng.SetOptimizer(Orca)
	out, err := eng.Explain(`SELECT count(*) FROM date_dim d LEFT JOIN orders_colo o ON d.date_id = o.date_id
		WHERE d.year = 2013 AND d.month BETWEEN 10 AND 12`)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(out, "HashLeftOuterJoin") && !strings.Contains(out, "HashRightOuterJoin") {
		t.Errorf("explain lacks an outer hash join:\n%s", out)
	}
	if !strings.Contains(out, "PartitionSelector(") || !strings.Contains(out, "orders_colo, o.date_id = d.date_id") && !strings.Contains(out, "orders_colo, d.date_id = o.date_id") {
		t.Errorf("explain lacks the join-driven PartitionSelector over orders_colo:\n%s", out)
	}
}

// Golden tree for the eliminable outer join: the join-driven selector
// streams the filtered dimension build rows into the fact DynamicScan,
// selecting 3 of 24 partitions — and, being join-driven ("hub"), it shows
// no OID-cache line: streamed selections are never cached.
func TestExplainAnalyzeGoldenOuterJoinDPE(t *testing.T) {
	eng := outerFixture(t, 2)
	eng.SetOptimizer(Orca)
	const q = `SELECT count(*) FROM date_dim d LEFT JOIN orders_colo o ON d.date_id = o.date_id
		WHERE d.year = 2013 AND d.month BETWEEN 10 AND 12`
	// Warm the plan cache so parameter binding, not planning, is exercised.
	if _, err := eng.Query(q); err != nil {
		t.Fatalf("warm-up Query: %v", err)
	}
	out, err := eng.ExplainAnalyze(q)
	if err != nil {
		t.Fatalf("ExplainAnalyze: %v", err)
	}
	const want = `optimization: 1 workers, 4 groups, T ms
Project (count_1)  (actual rows=1 loops=1 time=T)
  -> HashAggregate (count(*))  (actual rows=1 loops=1 time=T)
       Peak memory: N per instance
    -> Gather Motion  (actual rows=30 loops=1 time=T)
      -> HashLeftOuterJoin (d.date_id = o.date_id)  (rows=240 cost=284)  (actual rows=30 loops=2 time=T)
           Peak memory: N per instance
        -> PartitionSelector(2, orders_colo, d.date_id = o.date_id)  (rows=1 cost=31)  (actual rows=3 loops=2 time=T)
             Partitions selected: 3 (out of 24)
          -> Redistribute Motion (t1.c0)  (rows=1 cost=30)  (actual rows=3 loops=2 time=T)
            -> Filter (d.year = $1 AND d.month >= $2 AND d.month <= $3)  (rows=1 cost=28)  (actual rows=3 loops=1 time=T)
              -> Scan date_dim  (rows=25 cost=25)  (actual rows=25 loops=1 time=T)
                   Rows read from storage: 25
        -> DynamicScan(2, orders_colo)  (rows=240 cost=240)  (actual rows=30 loops=2 time=T)
             Partitions selected: 3 (out of 24)
             Rows read from storage: 30
`
	if got := normalizeAnalyze(out); got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
