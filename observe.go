package partopt

import (
	"context"
	"fmt"
	"strings"

	"partopt/internal/plan"
	"partopt/internal/plancache"
)

// OpStats is one operator's runtime record in a query's per-operator
// statistics tree (Rows.OpStats): the programmatic form of what EXPLAIN
// ANALYZE renders. Counters are totals across every slice instance
// ("loops") of the operator; PeakBytes is the high-water mark of any single
// instance. On an aborted query the tree carries the partial work done
// before the abort — operators no instance opened have Started == false.
type OpStats struct {
	Label string

	// Optimizer estimates. HasEstimates reports whether the planner
	// annotated the node at all, so a genuine rows=0 estimate is
	// distinguishable from "not annotated".
	HasEstimates     bool
	EstRows, EstCost float64

	Started      bool
	Instances    int
	RowsOut      int64
	RowsRead     int64 // rows read from storage (leaf operators)
	TimeNanos    int64 // wall time inside the operator, inclusive of children; sampled only on the ExplainAnalyze entry points
	PeakBytes    int64
	SpilledBytes int64
	SpillParts   int64

	// Partition accounting (PartitionSelector, DynamicScan and friends).
	// PartsTotal == 0 means not applicable.
	PartsSelected int
	PartsTotal    int

	Children []*OpStats
}

// buildOpStats converts a plan subtree plus its runtime actuals into the
// public tree.
func buildOpStats(n plan.Node, src plan.ActualSource) *OpStats {
	o := &OpStats{Label: n.Label()}
	if plan.HasEstimates(n) {
		o.HasEstimates = true
		o.EstRows, o.EstCost = plan.Estimates(n)
	}
	if a, ok := src.Actuals(n); ok {
		o.Started = a.Started
		o.Instances = a.Instances
		o.RowsOut = a.RowsOut
		o.RowsRead = a.RowsRead
		o.TimeNanos = a.Nanos
		o.PeakBytes = a.PeakBytes
		o.SpilledBytes = a.SpillBytes
		o.SpillParts = a.SpillParts
		o.PartsSelected = a.PartsSelected
		o.PartsTotal = a.PartsTotal
	}
	for _, c := range n.Children() {
		o.Children = append(o.Children, buildOpStats(c, src))
	}
	return o
}

// renderAnalyze produces the EXPLAIN ANALYZE text for an executed plan. An
// Orca-compiled entry leads with the memo-search header; the legacy
// planner's prep plans (which fill the main plan's OID parameters) are
// rendered before the main tree, mirroring how they execute. Cache hits
// replay the header of the compilation that produced the entry, so hit and
// miss render byte-identically.
func renderAnalyze(ent *plancache.Entry, src plan.ActualSource) string {
	node, pl := ent.Plan, ent.Legacy
	var b strings.Builder
	if ent.OptWorkers > 0 {
		fmt.Fprintf(&b, "optimization: %d workers, %d groups, %.3f ms\n",
			ent.OptWorkers, ent.OptGroups, float64(ent.OptNanos)/1e6)
	}
	if pl != nil {
		for _, prep := range pl.Preps {
			b.WriteString(plan.ExplainAnalyze(prep.Plan, src))
			b.WriteByte('\n')
		}
	}
	b.WriteString(plan.ExplainAnalyze(node, src))
	return b.String()
}

// ExplainAnalyze executes a SELECT and returns its plan annotated with
// runtime actuals — rows, loops, wall time, partition selection, spill and
// memory figures per operator. The query runs in full; use QueryCtx and
// Rows.ExplainAnalyze when the data rows are also needed.
func (e *Engine) ExplainAnalyze(query string, args ...Value) (string, error) {
	return e.ExplainAnalyzeCtx(context.Background(), query, args...)
}

// ExplainAnalyzeCtx is ExplainAnalyze governed by a context. On an aborted
// query the returned text (when non-empty) annotates the partial work done
// before the abort, alongside the error.
func (e *Engine) ExplainAnalyzeCtx(ctx context.Context, query string, args ...Value) (string, error) {
	p, err := e.prepare(query)
	if err != nil {
		return "", err
	}
	rows, err := e.queryPrepared(ctx, p, args, true)
	if rows == nil {
		return "", err
	}
	return rows.ExplainAnalyze, err
}

// Metrics renders the engine-wide metrics registry — query counts and
// latency distribution, spill volume, motion traffic, rows scanned — as
// deterministic, Prometheus-style text. Counters accumulate over the
// engine's lifetime, across all queries and both optimizers.
func (e *Engine) Metrics() string {
	return e.rt.Obs.Expose()
}
