package partopt

import (
	"context"
	"fmt"
	"time"

	"partopt/internal/oidcache"
	"partopt/internal/plan"
	"partopt/internal/plancache"
	"partopt/internal/sql"
)

// DefaultPlanCacheCapacity is the engine's initial plan-cache size, in
// entries. Use SetPlanCacheCapacity to change it (0 disables caching).
const DefaultPlanCacheCapacity = 256

// DefaultOIDCacheCapacity is the engine's initial partition-OID-cache
// size, in entries (one entry per distinct (table, interval-set) static
// selection). Use SetOIDCacheCapacity to change it (0 disables caching).
const DefaultOIDCacheCapacity = 1024

type stmtKind uint8

const (
	kindSelect stmtKind = iota
	kindInsert
	kindDML // UPDATE / DELETE
)

// prepared is the optimizer-independent front half of a statement: parsed
// once, normalized once, reusable across executions and optimizer
// switches. It holds both fingerprints — the Orca one over the
// auto-parameterized tree (Orca's PartitionSelector re-derives partition
// sets from parameter values at run time, so lifted literals don't cost
// pruning) and the legacy one over the raw tree (the legacy planner prunes
// statically at plan time and must see literal values).
type prepared struct {
	text  string
	kind  stmtKind
	stmt  sql.Statement
	sel   *sql.SelectStmt // raw tree; kindSelect only
	norm  *sql.Normalized // auto-parameterized tree + Orca fingerprint
	canon string          // canonical text of the raw tree — legacy fingerprint
}

// prepare parses and fingerprints a statement. It takes no engine locks:
// everything here depends only on the query text.
func (e *Engine) prepare(query string) (*prepared, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	p := &prepared{text: query, stmt: stmt}
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		p.kind = kindSelect
		p.sel = s
		p.norm = sql.NormalizeSelect(s)
		p.canon = sql.FormatSelect(s)
	case *sql.InsertStmt:
		p.kind = kindInsert
	default:
		p.kind = kindDML
	}
	return p, nil
}

// cacheKey derives the plan-cache key: fingerprint + optimizer kind +
// selection flag. Plans compiled under different optimizers or with
// partition selection toggled are distinct cache entries.
func (e *Engine) cacheKey(p *prepared, useNorm bool) string {
	fp, kind := p.canon, "planner"
	if useNorm {
		fp, kind = p.norm.Text, "orca"
	}
	sel := "+sel"
	if e.disableSelection {
		sel = "-sel"
	}
	return kind + "|" + sel + "|" + fp
}

// lookupOrCompile returns the cached plan for p under the current
// optimizer settings, compiling and caching on a miss. The epoch is read
// under the same read lock that excludes DDL, and Put stamps that observed
// epoch, so a plan compiled concurrently with an invalidating change can
// never be served after the bump.
func (e *Engine) lookupOrCompile(p *prepared) (ent *plancache.Entry, useNorm, hit bool, err error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	useNorm = e.optimizer != LegacyPlanner
	key := e.cacheKey(p, useNorm)
	epoch := e.plans.Epoch()
	if ent, ok := e.plans.Get(key); ok {
		return ent, useNorm, true, nil
	}
	stmt := sql.Statement(p.sel)
	if useNorm {
		stmt = p.norm.Stmt
	}
	bound, err := sql.Bind(e.cat, stmt)
	if err != nil {
		return nil, useNorm, false, err
	}
	ent, err = e.compileBound(bound)
	if err != nil {
		return nil, useNorm, false, err
	}
	e.plans.Put(key, ent, epoch)
	return ent, useNorm, false, nil
}

// compileBound optimizes a bound statement into a cacheable entry. Callers
// hold at least the engine read lock.
func (e *Engine) compileBound(bound *sql.Bound) (*plancache.Entry, error) {
	node, pl, opt, err := e.plan(bound)
	if err != nil {
		return nil, err
	}
	size := plan.SerializedSize(node)
	total := size
	if pl != nil {
		for _, prep := range pl.Preps {
			total += plan.SerializedSize(prep.Plan)
		}
	}
	return &plancache.Entry{
		Plan:       node,
		Legacy:     pl,
		Columns:    bound.Columns,
		NumParams:  bound.NumParams,
		PlanSize:   size,
		TotalSize:  total,
		OptWorkers: opt.Workers,
		OptGroups:  opt.Groups,
		OptNanos:   opt.Nanos,
	}, nil
}

// queryPrepared runs a prepared SELECT through the plan cache. Execution
// happens outside the engine lock; cached plan trees are immutable at run
// time (all per-execution state lives in exec.Ctx / Stats / Params), so
// concurrent executions may share one entry. timed enables per-operator
// wall-clock sampling for the EXPLAIN ANALYZE entry points.
func (e *Engine) queryPrepared(ctx context.Context, p *prepared, args []Value, timed bool) (*Rows, error) {
	if p.kind != kindSelect {
		return nil, fmt.Errorf("partopt: use Exec for UPDATE statements")
	}
	start := time.Now()
	ent, useNorm, hit, err := e.lookupOrCompile(p)
	if err != nil {
		return nil, err
	}
	need := ent.NumParams
	if useNorm {
		need = p.norm.NumExplicit
	}
	if need > len(args) {
		return nil, fmt.Errorf("partopt: query needs %d parameters, got %d", need, len(args))
	}
	vals := toRow(args)
	if useNorm {
		// Lifted literals bind after the caller's explicit parameters.
		vals = append(vals[:need:need], p.norm.Extra...)
	}
	out, err := e.executeEntry(ctx, ent, vals, timed)
	if err == nil && hit {
		e.met.hitLatency.Observe(time.Since(start).Seconds())
	}
	return out, err
}

// execPrepared runs a prepared INSERT / UPDATE / DELETE. DML plans are
// never cached: they carry fault-injection points and their effects change
// the data cached plans were costed against — every successful execution
// bumps the catalog epoch instead.
func (e *Engine) execPrepared(ctx context.Context, p *prepared, args []Value) (int64, error) {
	switch p.kind {
	case kindSelect:
		return 0, fmt.Errorf("partopt: use Query for SELECT statements")
	case kindInsert:
		e.mu.RLock()
		tab, rows, err := sql.BindInsert(e.cat, p.stmt.(*sql.InsertStmt), toRow(args))
		e.mu.RUnlock()
		if err != nil {
			return 0, err
		}
		for _, r := range rows {
			if err := e.store.Insert(tab, r); err != nil {
				return 0, err
			}
		}
		e.bumpEpoch()
		return int64(len(rows)), nil
	}
	e.mu.RLock()
	bound, err := sql.Bind(e.cat, p.stmt)
	var ent *plancache.Entry
	if err == nil {
		ent, err = e.compileBound(bound)
	}
	e.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	if ent.NumParams > len(args) {
		return 0, fmt.Errorf("partopt: query needs %d parameters, got %d", ent.NumParams, len(args))
	}
	res, err := e.executeEntry(ctx, ent, toRow(args), false)
	if err != nil {
		return 0, err
	}
	e.bumpEpoch()
	var n int64
	for _, row := range res.Data {
		n += row[0].Int()
	}
	return n, nil
}

// bumpEpoch invalidates every cached plan. Callers that already hold the
// engine lock bump e.plans directly.
func (e *Engine) bumpEpoch() {
	e.mu.RLock()
	c := e.plans
	e.mu.RUnlock()
	c.Bump()
}

// Stmt is a prepared statement: parsed and fingerprinted once, planned at
// most once per catalog epoch, executable many times with different
// parameters. Safe for concurrent use.
type Stmt struct {
	eng *Engine
	p   *prepared
}

// Prepare parses and fingerprints a statement for repeated execution.
// Planning is deferred to the first execution (and re-done only when the
// catalog epoch moves), so a Stmt never holds a stale plan.
func (e *Engine) Prepare(query string) (*Stmt, error) {
	p, err := e.prepare(query)
	if err != nil {
		return nil, err
	}
	return &Stmt{eng: e, p: p}, nil
}

// Text returns the statement's original SQL.
func (s *Stmt) Text() string { return s.p.text }

// Fingerprint returns the normalized cache fingerprint of a SELECT (the
// canonical text with literals lifted to $n). DML statements are not
// cached and report their original text.
func (s *Stmt) Fingerprint() string {
	if s.p.norm != nil {
		return s.p.norm.Text
	}
	return s.p.text
}

// NumParams reports how many parameters an execution of a SELECT must
// supply — the statement's explicit $n placeholders (lifted literals are
// bound internally). DML statements report -1 (unknown until bind).
func (s *Stmt) NumParams() int {
	if s.p.norm != nil {
		return s.p.norm.NumExplicit
	}
	return -1
}

// Query executes a prepared SELECT.
func (s *Stmt) Query(args ...Value) (*Rows, error) {
	return s.QueryCtx(context.Background(), args...)
}

// QueryCtx is Query governed by a context.
func (s *Stmt) QueryCtx(ctx context.Context, args ...Value) (*Rows, error) {
	return s.eng.queryPrepared(ctx, s.p, args, false)
}

// Exec executes a prepared INSERT, UPDATE or DELETE.
func (s *Stmt) Exec(args ...Value) (int64, error) {
	return s.ExecCtx(context.Background(), args...)
}

// ExecCtx is Exec governed by a context.
func (s *Stmt) ExecCtx(ctx context.Context, args ...Value) (int64, error) {
	return s.eng.execPrepared(ctx, s.p, args)
}

// ExplainAnalyze executes the prepared SELECT and returns its plan
// annotated with runtime actuals, wall-clock sampling included.
func (s *Stmt) ExplainAnalyze(args ...Value) (string, error) {
	rows, err := s.eng.queryPrepared(context.Background(), s.p, args, true)
	if err != nil {
		return "", err
	}
	return rows.ExplainAnalyze, nil
}

// PlanCacheStats is a point-in-time view of the engine's plan cache.
type PlanCacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	Entries       int
	Capacity      int
	Epoch         uint64
	// Optimizations counts every optimizer invocation since the engine was
	// created — the "cache hits skip the optimizer" assertion reads this.
	Optimizations int64
}

// PlanCacheStats reports the plan cache's counters.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	e.mu.RLock()
	c := e.plans
	e.mu.RUnlock()
	s := c.Snapshot()
	return PlanCacheStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
		Invalidations: s.Invalidations,
		Entries:       s.Entries,
		Capacity:      c.Capacity(),
		Epoch:         s.Epoch,
		Optimizations: e.met.optimizations.Value(),
	}
}

// SetPlanCacheCapacity replaces the plan cache with one holding up to n
// entries; n <= 0 disables caching. Existing entries and cache counters
// are discarded (the registry's cumulative metrics persist).
func (e *Engine) SetPlanCacheCapacity(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.plans = plancache.New(n)
	e.wireCacheMetrics()
}

// wireCacheMetrics mirrors the cache counters into the engine registry.
// Callers hold the engine write lock (or are still constructing the
// engine).
func (e *Engine) wireCacheMetrics() {
	r := e.rt.Obs
	e.plans.SetMetrics(plancache.Metrics{
		Hits:          r.Counter("partopt_plan_cache_hits_total"),
		Misses:        r.Counter("partopt_plan_cache_misses_total"),
		Evictions:     r.Counter("partopt_plan_cache_evictions_total"),
		Invalidations: r.Counter("partopt_plan_cache_invalidations_total"),
	})
	e.rt.OIDCache.SetMetrics(oidcache.Metrics{
		Hits:          r.Counter("partopt_oid_cache_hits_total"),
		Misses:        r.Counter("partopt_oid_cache_misses_total"),
		Evictions:     r.Counter("partopt_oid_cache_evictions_total"),
		Invalidations: r.Counter("partopt_oid_cache_invalidations_total"),
	})
}

// SetOIDCacheCapacity resizes the partition-OID cache (0 disables it:
// every static PartitionSelector recomputes its leaf set from the
// partition descriptor at Open). Resizing purges cached entries so the
// capacity bound holds exactly from here on.
func (e *Engine) SetOIDCacheCapacity(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rt.OIDCache.SetCapacity(n)
}

// OIDCacheStats is a point-in-time view of the partition-OID cache.
type OIDCacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	Entries       int
	Capacity      int
	Epoch         uint64
}

// OIDCacheStats reports the partition-OID cache's counters. Every miss is
// one desc.Select traversal; a sweep whose misses stop growing is serving
// selections entirely from the cache.
func (e *Engine) OIDCacheStats() OIDCacheStats {
	e.mu.RLock()
	c := e.rt.OIDCache
	e.mu.RUnlock()
	s := c.Snapshot()
	return OIDCacheStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
		Invalidations: s.Invalidations,
		Entries:       s.Entries,
		Capacity:      c.Capacity(),
		Epoch:         s.Epoch,
	}
}
