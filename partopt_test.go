package partopt

import (
	"math"
	"strings"
	"testing"
)

// paperEngine builds the paper's Figure 1/3 scenario: orders for two years
// (2012-2013) partitioned monthly, and the star-schema variant with a
// date_dim dimension table (orders partitioned on the foreign key date_id).
func paperEngine(t testing.TB, segs int) *Engine {
	t.Helper()
	eng, err := New(segs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.MustCreateTable("orders",
		Columns("order_id", TypeInt, "amount", TypeFloat, "date", TypeDate, "date_id", TypeInt),
		DistributedBy("order_id"),
		PartitionByRangeMonthly("date", 2012, 1, 24),
	)
	eng.MustCreateTable("date_dim",
		Columns("date_id", TypeInt, "year", TypeInt, "month", TypeInt, "day_of_week", TypeInt),
		Replicated(),
	)
	eng.MustCreateTable("orders_fk",
		Columns("order_id", TypeInt, "amount", TypeFloat, "date_id", TypeInt),
		DistributedBy("order_id"),
		// Partitioned by the foreign key: date_id = (year-2012)*12 + month,
		// one partition per month id 0..23.
		PartitionByRangeInt("date_id", 0, 24, 24),
	)

	id := int64(0)
	for year := 2012; year <= 2013; year++ {
		for month := 1; month <= 12; month++ {
			monthID := int64((year-2012)*12 + month - 1)
			if err := eng.Insert("date_dim", Int(monthID), Int(int64(year)), Int(int64(month)), Int(monthID%7)); err != nil {
				t.Fatalf("insert date_dim: %v", err)
			}
			for day := 1; day <= 10; day++ {
				id++
				amount := float64(month * day)
				if err := eng.Insert("orders",
					Int(id), Float(amount), Date(year, month, day), Int(monthID)); err != nil {
					t.Fatalf("insert orders: %v", err)
				}
				if err := eng.Insert("orders_fk",
					Int(id), Float(amount), Int(monthID)); err != nil {
					t.Fatalf("insert orders_fk: %v", err)
				}
			}
		}
	}
	if err := eng.Analyze(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return eng
}

// Paper Figure 2: static partition elimination on the date range.
func TestFig2StaticElimination(t *testing.T) {
	eng := paperEngine(t, 4)
	const q = "SELECT avg(amount) FROM orders WHERE date BETWEEN '2013-10-01' AND '2013-12-31'"

	for _, opt := range []OptimizerKind{Orca, LegacyPlanner} {
		eng.SetOptimizer(opt)
		rows, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%v: Query: %v", opt, err)
		}
		if len(rows.Data) != 1 {
			t.Fatalf("%v: rows = %d", opt, len(rows.Data))
		}
		// avg(month*day) for months 10..12, days 1..10 = 11 * 5.5 = 60.5.
		if got := rows.Data[0][0].Float(); math.Abs(got-60.5) > 1e-9 {
			t.Errorf("%v: avg = %v, want 60.5", opt, got)
		}
		// Both optimizers eliminate statically: 3 of 24 partitions.
		if got := rows.PartsScanned["orders"]; got != 3 {
			t.Errorf("%v: parts scanned = %d, want 3", opt, got)
		}
	}
}

// Paper Figure 4: dynamic elimination through the IN subquery on the
// dimension table. Orca prunes the fact table; only the 3 month partitions
// matching the dimension filter are read.
func TestFig4DynamicElimination(t *testing.T) {
	eng := paperEngine(t, 4)
	const q = `SELECT avg(amount) FROM orders_fk WHERE date_id IN
		(SELECT date_id FROM date_dim WHERE year = 2013 AND month BETWEEN 10 AND 12)`

	eng.SetOptimizer(Orca)
	rows, err := eng.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(rows.Data) != 1 || math.Abs(rows.Data[0][0].Float()-60.5) > 1e-9 {
		t.Fatalf("result = %v, want avg 60.5", rows.Data)
	}
	if got := rows.PartsScanned["orders_fk"]; got != 3 {
		t.Errorf("orca parts scanned = %d, want 3 of 24", got)
	}

	// The legacy planner does not handle elimination through a semi join:
	// it scans every partition (its rudimentary support covers only plain
	// inner-join patterns).
	eng.SetOptimizer(LegacyPlanner)
	rows, err = eng.Query(q)
	if err != nil {
		t.Fatalf("legacy Query: %v", err)
	}
	if math.Abs(rows.Data[0][0].Float()-60.5) > 1e-9 {
		t.Fatalf("legacy result = %v", rows.Data)
	}
	if got := rows.PartsScanned["orders_fk"]; got != 24 {
		t.Errorf("legacy parts scanned = %d, want all 24", got)
	}
}

func TestJoinQueryBothOptimizersAgree(t *testing.T) {
	eng := paperEngine(t, 3)
	const q = `SELECT count(*) FROM date_dim d, orders_fk o
		WHERE d.date_id = o.date_id AND d.year = 2012 AND d.month IN (1, 2)`
	var counts []int64
	for _, opt := range []OptimizerKind{Orca, LegacyPlanner} {
		eng.SetOptimizer(opt)
		rows, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		counts = append(counts, rows.Data[0][0].Int())
		if got := rows.PartsScanned["orders_fk"]; got != 2 {
			t.Errorf("%v: parts scanned = %d, want 2", opt, got)
		}
	}
	if counts[0] != 20 || counts[1] != 20 {
		t.Errorf("counts = %v, want [20 20]", counts)
	}
}

func TestPreparedStatement(t *testing.T) {
	eng := paperEngine(t, 2)
	const q = "SELECT count(*) FROM orders WHERE date = $1"

	eng.SetOptimizer(Orca)
	rows, err := eng.Query(q, Date(2013, 5, 3))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if rows.Data[0][0].Int() != 1 {
		t.Errorf("count = %v", rows.Data[0][0])
	}
	// Orca's run-time selector prunes with the bound parameter.
	if got := rows.PartsScanned["orders"]; got != 1 {
		t.Errorf("orca parts = %d, want 1", got)
	}

	eng.SetOptimizer(LegacyPlanner)
	rows, err = eng.Query(q, Date(2013, 5, 3))
	if err != nil {
		t.Fatalf("legacy Query: %v", err)
	}
	if got := rows.PartsScanned["orders"]; got != 24 {
		t.Errorf("legacy parts = %d, want 24 (no run-time pruning)", got)
	}
	// Missing parameter is an error.
	if _, err := eng.Query(q); err == nil {
		t.Errorf("missing parameter accepted")
	}
}

func TestUpdateThroughEngine(t *testing.T) {
	eng := paperEngine(t, 2)
	for _, opt := range []OptimizerKind{Orca, LegacyPlanner} {
		eng.SetOptimizer(opt)
		n, err := eng.Exec("UPDATE orders SET amount = amount + 1 WHERE date BETWEEN '2012-03-01' AND '2012-03-31'")
		if err != nil {
			t.Fatalf("%v: Exec: %v", opt, err)
		}
		if n != 10 {
			t.Errorf("%v: updated = %d, want 10", opt, n)
		}
	}
	// After two +1 updates amount for 2012-03-05 is 3*5+2.
	rows, err := eng.Query("SELECT amount FROM orders WHERE date = '2012-03-05'")
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rows.Data[0][0].Float() != 17 {
		t.Errorf("amount = %v, want 17", rows.Data[0][0])
	}
}

func TestUpdateFromJoin(t *testing.T) {
	eng := paperEngine(t, 2)
	eng.SetOptimizer(Orca)
	n, err := eng.Exec(`UPDATE orders_fk SET amount = 0 FROM date_dim d
		WHERE orders_fk.date_id = d.date_id AND d.year = 2013 AND d.month = 7`)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if n != 10 {
		t.Errorf("updated = %d, want 10", n)
	}
	rows, err := eng.Query("SELECT sum(amount) FROM orders_fk WHERE date_id = 18")
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rows.Data[0][0].Float() != 0 {
		t.Errorf("sum = %v, want 0", rows.Data[0][0])
	}
}

func TestExplainShowsOperators(t *testing.T) {
	eng := paperEngine(t, 2)
	eng.SetOptimizer(Orca)
	out, err := eng.Explain("SELECT * FROM orders WHERE date < '2012-06-01'")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	for _, want := range []string{"DynamicScan", "PartitionSelector", "Gather Motion"} {
		if !strings.Contains(out, want) {
			t.Errorf("orca explain missing %q:\n%s", want, out)
		}
	}
	eng.SetOptimizer(LegacyPlanner)
	out, err = eng.Explain("SELECT * FROM orders WHERE date < '2012-06-01'")
	if err != nil {
		t.Fatalf("legacy Explain: %v", err)
	}
	if !strings.Contains(out, "Append") {
		t.Errorf("legacy explain missing Append:\n%s", out)
	}
}

func TestPlanSizeMetric(t *testing.T) {
	eng := paperEngine(t, 2)
	const q = "SELECT * FROM orders WHERE date < '2013-12-31'"
	eng.SetOptimizer(Orca)
	orcaSize, err := eng.PlanSize(q)
	if err != nil {
		t.Fatalf("PlanSize: %v", err)
	}
	eng.SetOptimizer(LegacyPlanner)
	legacySize, err := eng.PlanSize(q)
	if err != nil {
		t.Fatalf("legacy PlanSize: %v", err)
	}
	if legacySize <= orcaSize {
		t.Errorf("legacy plan (%dB) should exceed orca plan (%dB) when scanning 24 parts", legacySize, orcaSize)
	}
}

func TestSelectionToggle(t *testing.T) {
	eng := paperEngine(t, 2)
	eng.SetOptimizer(Orca)
	const q = "SELECT count(*) FROM orders WHERE date BETWEEN '2013-01-01' AND '2013-01-31'"

	rows, err := eng.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if rows.PartsScanned["orders"] != 1 {
		t.Errorf("selection on: parts = %d, want 1", rows.PartsScanned["orders"])
	}
	eng.SetPartitionSelection(false)
	rows, err = eng.Query(q)
	if err != nil {
		t.Fatalf("Query off: %v", err)
	}
	if rows.PartsScanned["orders"] != 24 {
		t.Errorf("selection off: parts = %d, want 24", rows.PartsScanned["orders"])
	}
	if rows.Data[0][0].Int() != 10 {
		t.Errorf("count changed with selection off: %v", rows.Data[0][0])
	}
	eng.SetPartitionSelection(true)
}

func TestMultiLevelThroughEngine(t *testing.T) {
	eng, err := New(2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.MustCreateTable("events",
		Columns("day", TypeDate, "region", TypeString, "n", TypeInt),
		DistributedBy("n"),
		PartitionByRangeMonthly("day", 2012, 1, 6),
		PartitionByList("region",
			ListPartition{Name: "west", Values: []Value{String("CA"), String("WA")}},
			ListPartition{Name: "east", Values: []Value{String("NY"), String("MA")}},
		),
	)
	for m := 1; m <= 6; m++ {
		for i, rg := range []string{"CA", "WA", "NY", "MA"} {
			if err := eng.Insert("events", Date(2012, m, 5), String(rg), Int(int64(m*10+i))); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
	}
	if err := eng.Analyze(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	n, err := eng.NumPartitions("events")
	if err != nil || n != 12 {
		t.Fatalf("NumPartitions = %d (%v), want 12", n, err)
	}
	rows, err := eng.Query("SELECT count(*) FROM events WHERE day = '2012-03-05' AND region = 'NY'")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if rows.Data[0][0].Int() != 1 {
		t.Errorf("count = %v", rows.Data[0][0])
	}
	if rows.PartsScanned["events"] != 1 {
		t.Errorf("parts = %d, want exactly 1 of 12", rows.PartsScanned["events"])
	}
}

func TestEngineErrors(t *testing.T) {
	eng, err := New(1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := New(0); err == nil {
		t.Errorf("New(0) accepted")
	}
	if err := eng.Insert("ghost", Int(1)); err == nil {
		t.Errorf("insert into unknown table accepted")
	}
	if _, err := eng.Query("SELECT * FROM ghost"); err == nil {
		t.Errorf("query of unknown table accepted")
	}
	if _, err := eng.Query("NOT SQL AT ALL"); err == nil {
		t.Errorf("garbage accepted")
	}
	eng.MustCreateTable("t", Columns("a", TypeInt))
	if _, err := eng.Exec("SELECT a FROM t"); err == nil {
		t.Errorf("Exec of SELECT accepted")
	}
	if err := eng.Insert("t", Int(1)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, err := eng.Query("UPDATE t SET a = 1"); err == nil {
		t.Errorf("Query of UPDATE accepted")
	}
	if _, err := eng.NumPartitions("ghost"); err == nil {
		t.Errorf("NumPartitions of unknown table accepted")
	}
	if n, _ := eng.NumPartitions("t"); n != 1 {
		t.Errorf("unpartitioned NumPartitions = %d", n)
	}
	if len(eng.TableNames()) != 1 {
		t.Errorf("TableNames = %v", eng.TableNames())
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(3).Int() != 3 || Float(1.5).Float() != 1.5 || String("x").Str() != "x" || !Bool(true).Bool() {
		t.Errorf("value round trips failed")
	}
	if !Null.IsNull() {
		t.Errorf("Null not null")
	}
	d, err := ParseDate("2013-10-01")
	if err != nil || d.String() != "2013-10-01" {
		t.Errorf("ParseDate = %v, %v", d, err)
	}
	if _, err := ParseDate("bogus"); err == nil {
		t.Errorf("bad date accepted")
	}
	if Int(1).Type() != TypeInt || Date(2012, 1, 1).Type() != TypeDate {
		t.Errorf("Type() wrong")
	}
	if TypeString.String() != "string" {
		t.Errorf("ColType.String wrong")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	eng := paperEngine(t, 3)
	rows, err := eng.Query("SELECT order_id, amount FROM orders WHERE date BETWEEN '2013-06-01' AND '2013-06-30' ORDER BY amount DESC, order_id LIMIT 3")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(rows.Data) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows.Data))
	}
	// June 2013 amounts are 6*day for day 1..10 → top three 60, 54, 48.
	want := []float64{60, 54, 48}
	for i, w := range want {
		if rows.Data[i][1].Float() != w {
			t.Errorf("row %d amount = %v, want %v", i, rows.Data[i][1], w)
		}
	}
	// Ordinal form and ascending default.
	rows, err = eng.Query("SELECT amount FROM orders WHERE date BETWEEN '2013-06-01' AND '2013-06-30' ORDER BY 1 LIMIT 2")
	if err != nil {
		t.Fatalf("ordinal Query: %v", err)
	}
	if rows.Data[0][0].Float() != 6 || rows.Data[1][0].Float() != 12 {
		t.Errorf("ascending rows = %v", rows.Data)
	}
	// Grouped query ordered by the aggregate alias.
	rows, err = eng.Query("SELECT date_id, count(*) AS n FROM orders WHERE date < '2012-04-01' GROUP BY date_id ORDER BY n DESC, date_id LIMIT 1")
	if err != nil {
		t.Fatalf("grouped Query: %v", err)
	}
	if len(rows.Data) != 1 || rows.Data[0][1].Int() != 10 {
		t.Errorf("grouped rows = %v", rows.Data)
	}
	// Errors.
	if _, err := eng.Query("SELECT amount FROM orders ORDER BY ghost"); err == nil {
		t.Errorf("unknown ORDER BY column accepted")
	}
	if _, err := eng.Query("SELECT amount FROM orders ORDER BY 5"); err == nil {
		t.Errorf("out-of-range ordinal accepted")
	}
	if _, err := eng.Query("SELECT amount FROM orders LIMIT x"); err == nil {
		t.Errorf("bad LIMIT accepted")
	}
	// Works under the legacy planner too.
	eng.SetOptimizer(LegacyPlanner)
	rows, err = eng.Query("SELECT amount FROM orders WHERE date = '2012-05-05' ORDER BY 1 LIMIT 1")
	if err != nil {
		t.Fatalf("legacy ordered Query: %v", err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Float() != 25 {
		t.Errorf("legacy ordered rows = %v", rows.Data)
	}
}
