module partopt

go 1.22
