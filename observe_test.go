package partopt

import (
	"context"
	"errors"
	"regexp"
	"strings"
	"testing"
)

// normalizeAnalyze strips the non-deterministic figures (wall time, memory
// and spill volume) from EXPLAIN ANALYZE text so trees can be compared as
// goldens.
var (
	timeRe  = regexp.MustCompile(`time=[0-9.]+(µs|ms|s)`)
	peakRe  = regexp.MustCompile(`Peak memory: \S+ per instance`)
	spillRe = regexp.MustCompile(`Spilled: \S+ in \d+ part\(s\)`)
	optRe   = regexp.MustCompile(`(optimization: \d+ workers, \d+ groups,) [0-9.]+ ms`)
)

func normalizeAnalyze(s string) string {
	s = timeRe.ReplaceAllString(s, "time=T")
	s = peakRe.ReplaceAllString(s, "Peak memory: N per instance")
	s = spillRe.ReplaceAllString(s, "Spilled: S in P part(s)")
	s = optRe.ReplaceAllString(s, "$1 T ms")
	return s
}

// walkOpStats visits every node of a Rows.OpStats tree.
func walkOpStats(o *OpStats, f func(*OpStats)) {
	if o == nil {
		return
	}
	f(o)
	for _, c := range o.Children {
		walkOpStats(c, f)
	}
}

// Static elimination (paper Figure 2): the whole annotated tree is
// deterministic once times and memory are normalized, including the
// "Partitions selected: 3 (out of 24)" lines on the selector and the scan.
func TestExplainAnalyzeGoldenStatic(t *testing.T) {
	eng := paperEngine(t, 4)
	eng.SetOptimizer(Orca)
	const q = "SELECT avg(amount) FROM orders WHERE date BETWEEN '2013-10-01' AND '2013-12-31'"
	// Warm the partition-OID cache first: on a cold cache the hit/miss
	// split across the four concurrently-opening segment instances is
	// scheduling-dependent, on a warm one it is exactly 4/0.
	if _, err := eng.Query(q); err != nil {
		t.Fatalf("warm-up Query: %v", err)
	}
	out, err := eng.ExplainAnalyze(q)
	if err != nil {
		t.Fatalf("ExplainAnalyze: %v", err)
	}
	const want = `optimization: 1 workers, 2 groups, T ms
Project (avg_1)  (actual rows=1 loops=1 time=T)
  -> HashAggregate (avg(orders.amount))  (actual rows=1 loops=1 time=T)
       Peak memory: N per instance
    -> Gather Motion  (actual rows=30 loops=1 time=T)
      -> Filter (orders.date >= 2013-10-01 AND orders.date <= 2013-12-31)  (rows=3 cost=34)  (actual rows=30 loops=4 time=T)
        -> PartitionSelector(1, orders, orders.date >= 2013-10-01 AND orders.date <= 2013-12-31)  (rows=30 cost=31)  (actual rows=30 loops=4 time=T)
             Partitions selected: 3 (out of 24)
             OID cache: 4 hit(s), 0 miss(es)
          -> DynamicScan(1, orders)  (rows=240 cost=240)  (actual rows=30 loops=4 time=T)
               Partitions selected: 3 (out of 24)
               Rows read from storage: 30
`
	if got := normalizeAnalyze(out); got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// Dynamic (join-driven) elimination, the ISSUE's acceptance criterion: the
// DynamicScan's "Partitions selected: N (out of M)" must agree with the
// runtime partition counter Rows.PartsScanned.
func TestExplainAnalyzeDynamicMatchesPartsScanned(t *testing.T) {
	eng := paperEngine(t, 4)
	eng.SetOptimizer(Orca)
	const q = `SELECT avg(amount) FROM orders_fk WHERE date_id IN
		(SELECT date_id FROM date_dim WHERE year = 2013 AND month BETWEEN 10 AND 12)`
	rows, err := eng.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	scanned := rows.PartsScanned["orders_fk"]
	if scanned != 3 {
		t.Fatalf("PartsScanned[orders_fk] = %d, want 3", scanned)
	}

	// The rendered tree carries the exact line for the dynamic scan.
	wantLine := "Partitions selected: 3 (out of 24)"
	if !strings.Contains(rows.ExplainAnalyze, wantLine) {
		t.Errorf("tree lacks %q:\n%s", wantLine, rows.ExplainAnalyze)
	}

	// And the programmatic tree agrees: the DynamicScan node's selection
	// count equals the Rows counter, out of all 24 leaves.
	var dyn *OpStats
	walkOpStats(rows.OpStats, func(o *OpStats) {
		if strings.HasPrefix(o.Label, "DynamicScan") {
			dyn = o
		}
	})
	if dyn == nil {
		t.Fatalf("no DynamicScan node in OpStats tree")
	}
	if dyn.PartsSelected != scanned || dyn.PartsTotal != 24 {
		t.Errorf("DynamicScan selected %d/%d, want %d/24", dyn.PartsSelected, dyn.PartsTotal, scanned)
	}

	// The legacy planner cannot eliminate through the semi join: it expands
	// the fact table into a 24-child Append, and the counter agrees.
	eng.SetOptimizer(LegacyPlanner)
	rows, err = eng.Query(q)
	if err != nil {
		t.Fatalf("legacy Query: %v", err)
	}
	if got := rows.PartsScanned["orders_fk"]; got != 24 {
		t.Fatalf("legacy PartsScanned = %d, want 24", got)
	}
	if !strings.Contains(rows.ExplainAnalyze, "Append(24 children)") {
		t.Errorf("legacy tree lacks the 24-child Append:\n%s", rows.ExplainAnalyze)
	}
	// The legacy planner attaches no cost estimates; the renderer must not
	// fabricate "(rows=0 cost=0)" annotations for those nodes.
	if strings.Contains(rows.ExplainAnalyze, "rows=0 cost=0") {
		t.Errorf("legacy tree shows zero estimates for unannotated nodes:\n%s", rows.ExplainAnalyze)
	}
}

// A spilling aggregate reports its spill volume both on the operator's
// "Spilled:" line and in the OpStats tree, consistently with Rows.
func TestExplainAnalyzeGoldenSpill(t *testing.T) {
	eng := paperEngine(t, 4)
	eng.SetOptimizer(Orca)
	eng.SetSpillDir(t.TempDir())
	eng.SetWorkMem(512)
	rows, err := eng.Query("SELECT date_id, count(*) AS n, sum(amount) AS total FROM orders GROUP BY date_id")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if rows.SpilledBytes == 0 {
		t.Fatalf("work_mem=512 did not spill")
	}
	const want = `optimization: 1 workers, 2 groups, T ms
Project (date_id, n, total)  (actual rows=24 loops=1 time=T)
  -> Gather Motion  (actual rows=24 loops=1 time=T)
    -> HashAggregate (orders.date_id; count(*), sum(orders.amount))  (rows=80 cost=961)  (actual rows=24 loops=4 time=T)
         Spilled: S in P part(s)
         Peak memory: N per instance
      -> Redistribute Motion (t1.c3)  (rows=240 cost=721)  (actual rows=240 loops=4 time=T)
        -> PartitionSelector(1, orders, φ)  (rows=240 cost=241)  (actual rows=240 loops=4 time=T)
             Partitions selected: 24 (out of 24)
          -> DynamicScan(1, orders)  (rows=240 cost=240)  (actual rows=240 loops=4 time=T)
               Partitions selected: 24 (out of 24)
               Rows read from storage: 240
`
	if got := normalizeAnalyze(rows.ExplainAnalyze); got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Per-operator spill figures sum to the query-wide counters.
	var spillBytes, spillParts int64
	walkOpStats(rows.OpStats, func(o *OpStats) {
		spillBytes += o.SpilledBytes
		spillParts += o.SpillParts
	})
	if spillBytes != rows.SpilledBytes || spillParts != rows.SpillParts {
		t.Errorf("OpStats spill %d bytes/%d parts != Rows %d/%d",
			spillBytes, spillParts, rows.SpilledBytes, rows.SpillParts)
	}
}

// A cancelled query still returns Rows whose partial statistics agree with
// the per-operator tree — the stats object and the public Rows view are one
// consistent snapshot of the work done before the abort.
func TestCancelledQueryPartialStatsConsistent(t *testing.T) {
	eng := paperEngine(t, 4)
	eng.SetOptimizer(Orca)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := eng.QueryCtx(ctx, "SELECT avg(amount) FROM orders WHERE date BETWEEN '2013-10-01' AND '2013-12-31'")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rows == nil {
		t.Fatalf("cancelled query returned nil Rows — partial stats lost")
	}
	if rows.OpStats == nil || rows.ExplainAnalyze == "" {
		t.Fatalf("cancelled query lost its OpStats tree / rendered plan")
	}

	// Leaf reads recorded per operator must equal the query-wide counter:
	// every slice instance flushed its frames before Rows was built.
	var read int64
	walkOpStats(rows.OpStats, func(o *OpStats) { read += o.RowsRead })
	if read != rows.RowsScanned {
		t.Errorf("OpStats rows read %d != Rows.RowsScanned %d", read, rows.RowsScanned)
	}
	var spilled int64
	walkOpStats(rows.OpStats, func(o *OpStats) { spilled += o.SpilledBytes })
	if spilled != rows.SpilledBytes {
		t.Errorf("OpStats spill %d != Rows.SpilledBytes %d", spilled, rows.SpilledBytes)
	}
}

// Engine.Metrics exposes the registry and accumulates across queries.
func TestEngineMetricsExposition(t *testing.T) {
	eng := paperEngine(t, 4)
	if _, err := eng.Query("SELECT count(*) FROM orders"); err != nil {
		t.Fatalf("Query: %v", err)
	}
	text := eng.Metrics()
	for _, want := range []string{
		"partopt_queries_started_total",
		"partopt_queries_finished_total",
		"partopt_rows_scanned_total",
		"partopt_query_latency_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Metrics() lacks %q:\n%s", want, text)
		}
	}
}

// On a single segment the cold-cache split is deterministic: exactly one
// instance opens the selector, misses, and populates the cache; the same
// query re-run hits.
func TestExplainAnalyzeGoldenOIDCacheMiss(t *testing.T) {
	eng := paperEngine(t, 1)
	eng.SetOptimizer(Orca)
	const q = "SELECT avg(amount) FROM orders WHERE date BETWEEN '2013-10-01' AND '2013-12-31'"
	out, err := eng.ExplainAnalyze(q)
	if err != nil {
		t.Fatalf("ExplainAnalyze: %v", err)
	}
	if !strings.Contains(out, "OID cache: 0 hit(s), 1 miss(es)") {
		t.Errorf("cold tree lacks the miss line:\n%s", out)
	}
	out, err = eng.ExplainAnalyze(q)
	if err != nil {
		t.Fatalf("second ExplainAnalyze: %v", err)
	}
	if !strings.Contains(out, "OID cache: 1 hit(s), 0 miss(es)") {
		t.Errorf("warm tree lacks the hit line:\n%s", out)
	}
}
