package partopt

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// paroptFixture builds a small join schema for the parallel-optimizer
// soak: a monthly-partitioned fact plus a replicated dimension, so every
// compiled plan exercises the enumerator and dynamic elimination.
func paroptFixture(t *testing.T) *Engine {
	t.Helper()
	eng, err := New(3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.MustCreateTable("psales",
		Columns("date_id", TypeInt, "cust", TypeInt, "amount", TypeFloat),
		DistributedBy("cust"),
		PartitionByRangeInt("date_id", 0, 120, 12))
	eng.MustCreateTable("pdim",
		Columns("date_id", TypeInt, "month", TypeInt),
		Replicated())
	for d := int64(0); d < 120; d++ {
		if err := eng.Insert("psales", Int(d), Int(d%17), Float(float64(d))); err != nil {
			t.Fatalf("insert psales: %v", err)
		}
		if err := eng.Insert("pdim", Int(d), Int(d/10+1)); err != nil {
			t.Fatalf("insert pdim: %v", err)
		}
	}
	if err := eng.Analyze(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	eng.SetOptimizer(Orca)
	return eng
}

// Soak for the parallel memo search: concurrent join-query traffic racing
// catalog-epoch bumps (DDL, ANALYZE, DML) and pool-size churn against one
// engine. Run under -race. Afterward no goroutine may linger and no stale
// plan may survive a bump — the PR 5 plan-cache soak's guarantees must hold
// with the parallel optimizer in the loop.
func TestParallelOptimizerSoak(t *testing.T) {
	eng := paroptFixture(t)
	before := runtime.NumGoroutine()

	const (
		workers = 6
		iters   = 40
	)
	var wg sync.WaitGroup

	shared, err := eng.Prepare("SELECT sum(s.amount) FROM pdim d, psales s WHERE d.date_id = s.date_id AND d.month = $1")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(w) * 31))
			for i := 0; i < iters; i++ {
				switch rnd.Intn(3) {
				case 0:
					q := fmt.Sprintf(`SELECT count(*) FROM pdim d, psales s
						WHERE d.date_id = s.date_id AND d.month = %d`, 1+rnd.Intn(12))
					if _, err := eng.Query(q); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				case 1:
					if _, err := shared.Query(Int(int64(1 + rnd.Intn(12)))); err != nil {
						t.Errorf("worker %d prepared: %v", w, err)
						return
					}
				default:
					if _, err := eng.Explain(`SELECT count(*) FROM psales s, pdim d
						WHERE s.date_id = d.date_id AND d.month < 3`); err != nil {
						t.Errorf("worker %d explain: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Mutator: epoch-bumping churn, including the optimizer pool size — a
	// query compiled under one worker count may execute under another, and
	// the cached entry must replay its own compilation's figures.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pools := []int{1, 2, 4, 8}
		for i := 0; i < iters; i++ {
			switch i % 5 {
			case 0:
				eng.SetOptimizerWorkers(pools[i/5%len(pools)])
			case 1:
				if err := eng.Analyze(); err != nil {
					t.Errorf("Analyze: %v", err)
					return
				}
			case 2:
				if err := eng.CreateTable(fmt.Sprintf("psoak_%d", i), Columns("x", TypeInt)); err != nil {
					t.Errorf("CreateTable: %v", err)
					return
				}
			case 3:
				if err := eng.Insert("psales", Int(int64(i%120)), Int(int64(i)), Float(1)); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			default:
				if _, err := eng.Exec(fmt.Sprintf("UPDATE psales SET amount = amount + 0 WHERE date_id = %d", i%120)); err != nil {
					t.Errorf("Exec: %v", err)
					return
				}
			}
		}
	}()

	wg.Wait()

	st := eng.PlanCacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("soak produced no cache traffic: %+v", st)
	}
	if st.Epoch == 0 {
		t.Errorf("mutator never bumped the epoch: %+v", st)
	}

	// No stale plan survives a bump with the parallel pool active: the
	// table-scan plan cached above must recompile into an index plan.
	eng.SetOptimizerWorkers(8)
	const q = "SELECT amount FROM psales WHERE cust = 7"
	if _, err := eng.Query(q); err != nil {
		t.Fatalf("pre-index query: %v", err)
	}
	if err := eng.CreateIndex("psoak_cust_idx", "psales", "cust"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	out, err := eng.Explain(q)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(out, "psoak_cust_idx") {
		t.Errorf("stale pre-index plan survived the epoch bump:\n%s", out)
	}

	// The parallel search must not leak its pool: every search goroutine
	// exits with its Optimize call.
	waitGoroutinesSettle(t, before)
}
